//! Per-cycle collection statistics and aggregation helpers — the raw
//! material for every table and figure in the paper's §6.
//!
//! Every completed cycle is both pushed to the in-memory [`GcLog`] *and*
//! emitted to the telemetry event ring as a batch of `CycleStat` events
//! ([`emit_cycle_events`]); [`GcLog::from_events`] rebuilds a log from
//! that stream. Floating-point fields travel as `f64::to_bits`, so the
//! rebuilt log is bit-for-bit identical to direct accounting — the §6
//! tables and a live telemetry view can never disagree.

use std::time::Duration;

use mcgc_telemetry::{EventKind, EventStage, GcEvent, StatField, Telemetry};

/// What started a collection cycle's stop-the-world phase.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Allocation could not be satisfied (the concurrent phase, if any,
    /// was halted early).
    AllocationFailure,
    /// The concurrent phase finished all its work (stacks scanned, cards
    /// cleaned once, no marked objects left to trace) — a "premature" GC
    /// in Table 2's terms.
    ConcurrentDone,
    /// The stop-the-world baseline collector ran (no concurrent phase).
    Baseline,
    /// An explicit `collect()` request.
    Explicit,
}

impl Trigger {
    /// Stable wire code used in telemetry events.
    pub fn code(self) -> u64 {
        match self {
            Trigger::AllocationFailure => 0,
            Trigger::ConcurrentDone => 1,
            Trigger::Baseline => 2,
            Trigger::Explicit => 3,
        }
    }

    /// Inverse of [`Trigger::code`].
    pub fn from_code(code: u64) -> Option<Trigger> {
        match code {
            0 => Some(Trigger::AllocationFailure),
            1 => Some(Trigger::ConcurrentDone),
            2 => Some(Trigger::Baseline),
            3 => Some(Trigger::Explicit),
            _ => None,
        }
    }
}

/// Statistics for one completed collection cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleStats {
    /// 1-based cycle number.
    pub cycle: u64,
    /// What ended the concurrent phase (or `Baseline`).
    pub trigger: Option<Trigger>,

    // -- pause decomposition, work-model milliseconds --
    /// Total modelled pause.
    pub pause_ms: f64,
    /// Mark component (final card cleaning + root rescan + tracing).
    pub mark_ms: f64,
    /// Sweep component (0 under lazy sweep — it happens outside the
    /// pause).
    pub sweep_ms: f64,
    /// Card-cleaning part of the mark component.
    pub card_ms: f64,
    /// Root-scanning part of the mark component.
    pub root_ms: f64,
    /// Wall-clock pause measured on the host (noisy; for reference).
    pub pause_wall: Duration,

    // -- measured per-phase pause walls (scheduler-parallel; host wall time,
    //    noisy — the `*_ms` fields above stay the host-independent work
    //    model) --
    /// Wall time of the final card cleaning, including the drain loop's
    /// redirty/re-clean passes.
    pub cards_wall: Duration,
    /// Wall time of stack + global root rescanning.
    pub roots_wall: Duration,
    /// Wall time of the parallel packet drain (excluding re-clean
    /// passes, which are accounted to `cards_wall`).
    pub drain_wall: Duration,
    /// Wall time of the sweep phase (eager sweep, or lazy-plan setup).
    pub sweep_wall: Duration,
    /// Wall time of the end-of-pause mark-bit pre-clear.
    pub clear_wall: Duration,
    /// Wall time of the previous sweep epoch's straggler fence (lazy
    /// sweep). The fence runs *before* this cycle's world-stop, so it is
    /// not part of `pause_wall`; it is reported here so the off-pause
    /// sweep cost stays visible.
    pub straggler_wall: Duration,
    /// Chunks the straggler fence had to finish (0 when refill and
    /// background sweeping drained the whole epoch off-pause).
    pub straggler_chunks: u64,

    // -- concurrent phase --
    /// Wall-clock duration of the concurrent phase.
    pub concurrent_wall: Duration,
    /// Wall-clock duration of the pre-concurrent phase (end of previous
    /// pause to kickoff).
    pub pre_concurrent_wall: Duration,
    /// Bytes traced concurrently by mutator increments.
    pub mutator_traced_bytes: u64,
    /// Bytes traced concurrently by background threads.
    pub background_traced_bytes: u64,
    /// Bytes traced during the stop-the-world phase.
    pub stw_traced_bytes: u64,
    /// Bytes allocated during the concurrent phase.
    pub alloc_concurrent_bytes: u64,
    /// Bytes allocated during the pre-concurrent phase.
    pub alloc_pre_concurrent_bytes: u64,

    // -- cards --
    /// Dirty cards cleaned during the concurrent phase.
    pub cards_cleaned_concurrent: u64,
    /// Dirty cards cleaned during the stop-the-world phase.
    pub cards_cleaned_stw: u64,
    /// Cards the concurrent cleaner had not yet reached when the phase
    /// was halted by an allocation failure (Table 2 "Cards Left").
    pub cards_left: u64,
    /// Card-cleaning handshakes performed (§5.3 batches).
    pub handshakes: u64,

    // -- heap --
    /// Free bytes when the stop-the-world phase began.
    pub free_at_stw_start: u64,
    /// Live bytes after marking (swept heap).
    pub live_after_bytes: u64,
    /// Live objects after marking.
    pub live_after_objects: u64,
    /// Free bytes after the cycle completed.
    pub free_after_bytes: u64,
    /// Heap occupancy after the cycle, in `[0, 1]`.
    pub occupancy_after: f64,

    // -- load balancing (Table 4) --
    /// Tracing increments performed by mutators.
    pub increments: u64,
    /// Sum of per-increment tracing factors (actual/assigned).
    pub tracing_factor_sum: f64,
    /// Sum of squared tracing factors (for the fairness stddev).
    pub tracing_factor_sq_sum: f64,
    /// CAS operations on packet sub-pools during this cycle.
    pub cas_ops: u64,
    /// Packet overflow events (§4.3; expected rare).
    pub overflows: u64,
    /// Objects deferred via the §5.2 allocation-bit protocol.
    pub deferred_objects: u64,

    // -- packets (§6.3) --
    /// High-water mark of packets simultaneously in use.
    pub packets_in_use_watermark: usize,
    /// High-water mark of occupied packet entries.
    pub packet_entries_watermark: usize,
}

impl CycleStats {
    /// Average tracing factor over the cycle's increments.
    pub fn tracing_factor(&self) -> f64 {
        if self.increments == 0 {
            0.0
        } else {
            self.tracing_factor_sum / self.increments as f64
        }
    }

    /// Standard deviation of tracing factors (Table 4 "fairness").
    pub fn fairness(&self) -> f64 {
        if self.increments < 2 {
            return 0.0;
        }
        let n = self.increments as f64;
        let mean = self.tracing_factor_sum / n;
        let var = (self.tracing_factor_sq_sum / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Total bytes traced concurrently (mutators + background).
    pub fn concurrent_traced_bytes(&self) -> u64 {
        self.mutator_traced_bytes + self.background_traced_bytes
    }

    /// Sum of the measured per-phase pause walls (cards, roots, drain,
    /// sweep, clear). Always at most [`CycleStats::pause_wall`]; the
    /// remainder is cache retirement, audits, and accounting.
    pub fn phase_wall_total(&self) -> Duration {
        self.cards_wall + self.roots_wall + self.drain_wall + self.sweep_wall + self.clear_wall
    }

    /// CAS cost normalized by live KB at cycle end (Table 4 "cost").
    pub fn normalized_cas_cost(&self) -> f64 {
        if self.live_after_bytes == 0 {
            0.0
        } else {
            self.cas_ops as f64 / (self.live_after_bytes as f64 / 1024.0)
        }
    }

    /// Card-cleaning ratio: stop-the-world cards relative to concurrent
    /// cards (Table 2 "CC Rate"; the criterion wants the stop-the-world
    /// phase left with under 20% of the concurrent volume).
    ///
    /// Returns `None` when no concurrent cleaning happened at all —
    /// baseline/STW-only cycles, and halted cycles whose cleaner never
    /// ran — because a ratio over zero concurrent cards is meaningless
    /// (it used to surface as `f64::INFINITY` and poison aggregates).
    pub fn cc_rate(&self) -> Option<f64> {
        if self.cards_cleaned_concurrent == 0 {
            None
        } else {
            Some(self.cards_cleaned_stw as f64 / self.cards_cleaned_concurrent as f64)
        }
    }

    /// The Table 2 CC-Rate failure predicate for this cycle: the
    /// stop-the-world phase cleaned more than 20% of the concurrent
    /// volume. Baseline cycles have no concurrent phase and cannot fail;
    /// a concurrent cycle that cleaned *nothing* concurrently but left
    /// cards to the pause fails outright.
    pub fn cc_rate_failed(&self) -> bool {
        if self.trigger == Some(Trigger::Baseline) {
            return false;
        }
        match self.cc_rate() {
            Some(rate) => rate > 0.20,
            None => self.cards_cleaned_stw > 0,
        }
    }
}

/// The log of all completed cycles plus run-level aggregates.
#[derive(Clone, Debug, Default)]
pub struct GcLog {
    /// Completed cycles in order.
    pub cycles: Vec<CycleStats>,
}

impl GcLog {
    /// Average of `f` over cycles, or 0 for an empty log.
    pub fn avg(&self, f: impl Fn(&CycleStats) -> f64) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().map(&f).sum::<f64>() / self.cycles.len() as f64
    }

    /// Maximum of `f` over cycles, or 0 for an empty log.
    pub fn max(&self, f: impl Fn(&CycleStats) -> f64) -> f64 {
        self.cycles.iter().map(&f).fold(0.0, f64::max)
    }

    /// Average modelled pause, ms.
    pub fn avg_pause_ms(&self) -> f64 {
        self.avg(|c| c.pause_ms)
    }

    /// Maximum modelled pause, ms.
    pub fn max_pause_ms(&self) -> f64 {
        self.max(|c| c.pause_ms)
    }

    /// Average modelled mark component, ms.
    pub fn avg_mark_ms(&self) -> f64 {
        self.avg(|c| c.mark_ms)
    }

    /// Average *measured* wall pause, ms (host wall time — noisy, unlike
    /// the modelled [`GcLog::avg_pause_ms`]).
    pub fn avg_pause_wall_ms(&self) -> f64 {
        self.avg(|c| c.pause_wall.as_secs_f64() * 1e3)
    }

    /// Maximum measured wall pause, ms.
    pub fn max_pause_wall_ms(&self) -> f64 {
        self.max(|c| c.pause_wall.as_secs_f64() * 1e3)
    }

    /// Average modelled sweep component, ms.
    pub fn avg_sweep_ms(&self) -> f64 {
        self.avg(|c| c.sweep_ms)
    }

    /// Average occupancy at cycle end (floating-garbage comparisons).
    pub fn avg_occupancy_after(&self) -> f64 {
        self.avg(|c| c.occupancy_after)
    }

    /// Average cards cleaned in the stop-the-world phase (Table 1
    /// "Average Final Card Cleaning").
    pub fn avg_final_card_cleaning(&self) -> f64 {
        self.avg(|c| c.cards_cleaned_stw as f64)
    }

    /// Fraction of cycles failing the Table 2 CC-Rate criterion
    /// (stop-the-world cleaning exceeding 20% of concurrent cleaning;
    /// baseline cycles never count — see [`CycleStats::cc_rate_failed`]).
    pub fn cc_rate_failures(&self) -> f64 {
        self.fraction(|c| c.cc_rate_failed())
    }

    /// Fraction of cycles failing the free-space criterion: the
    /// concurrent phase finished with more than 5% of `heap_bytes` free.
    pub fn free_space_failures(&self, heap_bytes: usize) -> f64 {
        self.fraction(|c| {
            c.trigger == Some(Trigger::ConcurrentDone)
                && c.free_at_stw_start as f64 > heap_bytes as f64 * 0.05
        })
    }

    /// Average free space at stop-the-world start over premature
    /// (concurrent-done) cycles, as a fraction of the heap.
    pub fn avg_premature_free(&self, heap_bytes: usize) -> f64 {
        let premature: Vec<_> = self
            .cycles
            .iter()
            .filter(|c| c.trigger == Some(Trigger::ConcurrentDone))
            .collect();
        if premature.is_empty() {
            return 0.0;
        }
        premature
            .iter()
            .map(|c| c.free_at_stw_start as f64 / heap_bytes as f64)
            .sum::<f64>()
            / premature.len() as f64
    }

    /// Average cards left unreached when halted by allocation failure.
    pub fn avg_cards_left(&self) -> f64 {
        self.avg(|c| c.cards_left as f64)
    }

    /// Fraction of cycles satisfying `pred`.
    pub fn fraction(&self, pred: impl Fn(&CycleStats) -> bool) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().filter(|c| pred(c)).count() as f64 / self.cycles.len() as f64
    }

    /// Rebuilds a log by replaying a telemetry event stream: each
    /// contiguous `CycleStat` batch terminated by `CycleEnd` becomes one
    /// [`CycleStats`] record, bit-for-bit identical to the one direct
    /// accounting produced (floats travel as `to_bits`). Incomplete
    /// batches (no `CycleEnd` yet, or partially overwritten by ring
    /// wraparound) are dropped.
    pub fn from_events(events: &[GcEvent]) -> GcLog {
        use std::collections::BTreeMap;
        let mut partial: BTreeMap<u32, CycleStats> = BTreeMap::new();
        let mut cycles = Vec::new();
        for ev in events {
            match ev.kind {
                EventKind::CycleStat(field) => {
                    let c = partial.entry(ev.cycle).or_default();
                    c.cycle = ev.cycle as u64;
                    apply_stat(c, field, ev.arg);
                }
                EventKind::CycleEnd => {
                    if let Some(c) = partial.remove(&ev.cycle) {
                        cycles.push(c);
                    }
                }
                _ => {}
            }
        }
        cycles.sort_by_key(|c| c.cycle);
        GcLog { cycles }
    }
}

fn apply_stat(c: &mut CycleStats, field: StatField, arg: u64) {
    let f = f64::from_bits;
    match field {
        StatField::Trigger => c.trigger = Trigger::from_code(arg),
        StatField::PauseMs => c.pause_ms = f(arg),
        StatField::MarkMs => c.mark_ms = f(arg),
        StatField::SweepMs => c.sweep_ms = f(arg),
        StatField::CardMs => c.card_ms = f(arg),
        StatField::RootMs => c.root_ms = f(arg),
        StatField::PauseWallNs => c.pause_wall = Duration::from_nanos(arg),
        StatField::ConcurrentWallNs => c.concurrent_wall = Duration::from_nanos(arg),
        StatField::PreConcurrentWallNs => c.pre_concurrent_wall = Duration::from_nanos(arg),
        StatField::TracedMutator => c.mutator_traced_bytes = arg,
        StatField::TracedBackground => c.background_traced_bytes = arg,
        StatField::TracedStw => c.stw_traced_bytes = arg,
        StatField::AllocDuringConcurrent => c.alloc_concurrent_bytes = arg,
        StatField::AllocPreConcurrent => c.alloc_pre_concurrent_bytes = arg,
        StatField::CardsCleanedConcurrent => c.cards_cleaned_concurrent = arg,
        StatField::CardsCleanedStw => c.cards_cleaned_stw = arg,
        StatField::CardsLeft => c.cards_left = arg,
        StatField::Handshakes => c.handshakes = arg,
        StatField::FreeAtStwStart => c.free_at_stw_start = arg,
        StatField::LiveAfterBytes => c.live_after_bytes = arg,
        StatField::LiveAfterObjects => c.live_after_objects = arg,
        StatField::FreeAfterBytes => c.free_after_bytes = arg,
        StatField::OccupancyAfter => c.occupancy_after = f(arg),
        StatField::Increments => c.increments = arg,
        StatField::TracingFactorSum => c.tracing_factor_sum = f(arg),
        StatField::TracingFactorSqSum => c.tracing_factor_sq_sum = f(arg),
        StatField::CasOps => c.cas_ops = arg,
        StatField::Overflows => c.overflows = arg,
        StatField::DeferredObjects => c.deferred_objects = arg,
        StatField::PacketsInUseWatermark => c.packets_in_use_watermark = arg as usize,
        StatField::PacketEntriesWatermark => c.packet_entries_watermark = arg as usize,
        StatField::CardsWallNs => c.cards_wall = Duration::from_nanos(arg),
        StatField::RootsWallNs => c.roots_wall = Duration::from_nanos(arg),
        StatField::DrainWallNs => c.drain_wall = Duration::from_nanos(arg),
        StatField::SweepWallNs => c.sweep_wall = Duration::from_nanos(arg),
        StatField::ClearWallNs => c.clear_wall = Duration::from_nanos(arg),
        StatField::StragglerWallNs => c.straggler_wall = Duration::from_nanos(arg),
        StatField::StragglerChunks => c.straggler_chunks = arg,
    }
}

/// Emits one completed cycle to the telemetry ring as a contiguous
/// `CycleStat` batch terminated by `CycleEnd` — the single source the
/// live view and [`GcLog::from_events`] replay share with the in-memory
/// log.
pub fn emit_cycle_events(tel: &Telemetry, stats: &CycleStats) {
    if !tel.is_enabled() {
        return;
    }
    let cycle = stats.cycle as u32;
    let mut stage = EventStage::new();
    let mut put = |field: StatField, arg: u64| {
        tel.stage(&mut stage, EventKind::CycleStat(field), cycle, arg);
    };
    put(
        StatField::Trigger,
        stats.trigger.map_or(u64::MAX, Trigger::code),
    );
    put(StatField::PauseMs, stats.pause_ms.to_bits());
    put(StatField::MarkMs, stats.mark_ms.to_bits());
    put(StatField::SweepMs, stats.sweep_ms.to_bits());
    put(StatField::CardMs, stats.card_ms.to_bits());
    put(StatField::RootMs, stats.root_ms.to_bits());
    put(StatField::PauseWallNs, stats.pause_wall.as_nanos() as u64);
    put(
        StatField::ConcurrentWallNs,
        stats.concurrent_wall.as_nanos() as u64,
    );
    put(
        StatField::PreConcurrentWallNs,
        stats.pre_concurrent_wall.as_nanos() as u64,
    );
    put(StatField::TracedMutator, stats.mutator_traced_bytes);
    put(StatField::TracedBackground, stats.background_traced_bytes);
    put(StatField::TracedStw, stats.stw_traced_bytes);
    put(
        StatField::AllocDuringConcurrent,
        stats.alloc_concurrent_bytes,
    );
    put(
        StatField::AllocPreConcurrent,
        stats.alloc_pre_concurrent_bytes,
    );
    put(
        StatField::CardsCleanedConcurrent,
        stats.cards_cleaned_concurrent,
    );
    put(StatField::CardsCleanedStw, stats.cards_cleaned_stw);
    put(StatField::CardsLeft, stats.cards_left);
    put(StatField::Handshakes, stats.handshakes);
    put(StatField::FreeAtStwStart, stats.free_at_stw_start);
    put(StatField::LiveAfterBytes, stats.live_after_bytes);
    put(StatField::LiveAfterObjects, stats.live_after_objects);
    put(StatField::FreeAfterBytes, stats.free_after_bytes);
    put(StatField::OccupancyAfter, stats.occupancy_after.to_bits());
    put(StatField::Increments, stats.increments);
    put(
        StatField::TracingFactorSum,
        stats.tracing_factor_sum.to_bits(),
    );
    put(
        StatField::TracingFactorSqSum,
        stats.tracing_factor_sq_sum.to_bits(),
    );
    put(StatField::CasOps, stats.cas_ops);
    put(StatField::Overflows, stats.overflows);
    put(StatField::DeferredObjects, stats.deferred_objects);
    put(
        StatField::PacketsInUseWatermark,
        stats.packets_in_use_watermark as u64,
    );
    put(
        StatField::PacketEntriesWatermark,
        stats.packet_entries_watermark as u64,
    );
    put(StatField::CardsWallNs, stats.cards_wall.as_nanos() as u64);
    put(StatField::RootsWallNs, stats.roots_wall.as_nanos() as u64);
    put(StatField::DrainWallNs, stats.drain_wall.as_nanos() as u64);
    put(StatField::SweepWallNs, stats.sweep_wall.as_nanos() as u64);
    put(StatField::ClearWallNs, stats.clear_wall.as_nanos() as u64);
    put(
        StatField::StragglerWallNs,
        stats.straggler_wall.as_nanos() as u64,
    );
    put(StatField::StragglerChunks, stats.straggler_chunks);
    tel.stage(&mut stage, EventKind::CycleEnd, cycle, cycle as u64);
    tel.flush(&mut stage);
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn cycle(pause: f64, factor_samples: &[f64]) -> CycleStats {
        CycleStats {
            pause_ms: pause,
            increments: factor_samples.len() as u64,
            tracing_factor_sum: factor_samples.iter().sum(),
            tracing_factor_sq_sum: factor_samples.iter().map(|f| f * f).sum(),
            ..CycleStats::default()
        }
    }

    #[test]
    fn aggregates_over_cycles() {
        let log = GcLog {
            cycles: vec![cycle(10.0, &[]), cycle(30.0, &[]), cycle(20.0, &[])],
        };
        assert!((log.avg_pause_ms() - 20.0).abs() < 1e-9);
        assert!((log.max_pause_ms() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_zero() {
        let log = GcLog::default();
        assert_eq!(log.avg_pause_ms(), 0.0);
        assert_eq!(log.max_pause_ms(), 0.0);
        assert_eq!(log.cc_rate_failures(), 0.0);
    }

    #[test]
    fn fairness_is_stddev_of_factors() {
        let c = cycle(0.0, &[1.0, 1.0, 1.0]);
        assert!(c.fairness() < 1e-9);
        let c = cycle(0.0, &[0.0, 2.0]);
        assert!((c.tracing_factor() - 1.0).abs() < 1e-9);
        assert!((c.fairness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cc_rate_and_failures() {
        let mut good = CycleStats::default();
        good.trigger = Some(Trigger::ConcurrentDone);
        good.cards_cleaned_concurrent = 100;
        good.cards_cleaned_stw = 10;
        assert!((good.cc_rate().unwrap() - 0.1).abs() < 1e-9);
        assert!(!good.cc_rate_failed());
        let mut bad = CycleStats::default();
        bad.trigger = Some(Trigger::AllocationFailure);
        bad.cards_cleaned_concurrent = 100;
        bad.cards_cleaned_stw = 50;
        assert!(bad.cc_rate_failed());
        let log = GcLog {
            cycles: vec![good, bad],
        };
        assert!((log.cc_rate_failures() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cc_rate_without_concurrent_cleaning() {
        // A baseline (STW-only) cycle cleans no cards concurrently; the
        // ratio is undefined, not infinite, and the cycle never counts as
        // a Table 2 failure even when the pause did clean cards.
        let mut baseline = CycleStats::default();
        baseline.trigger = Some(Trigger::Baseline);
        baseline.cards_cleaned_stw = 40;
        assert_eq!(baseline.cc_rate(), None);
        assert!(!baseline.cc_rate_failed());

        // A halted concurrent cycle whose cleaner never ran DOES fail if
        // the pause had to clean cards...
        let mut halted = CycleStats::default();
        halted.trigger = Some(Trigger::AllocationFailure);
        halted.cards_cleaned_stw = 40;
        assert_eq!(halted.cc_rate(), None);
        assert!(halted.cc_rate_failed());

        // ...but not when there was nothing to clean anywhere.
        let mut clean = CycleStats::default();
        clean.trigger = Some(Trigger::ConcurrentDone);
        assert!(!clean.cc_rate_failed());

        let log = GcLog {
            cycles: vec![baseline, halted, clean],
        };
        assert!((log.cc_rate_failures() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn free_space_failures_only_count_premature_cycles() {
        let heap = 100usize << 20;
        let mut premature_fail = CycleStats::default();
        premature_fail.trigger = Some(Trigger::ConcurrentDone);
        premature_fail.free_at_stw_start = 10 << 20; // 10% > 5%
        let mut premature_ok = CycleStats::default();
        premature_ok.trigger = Some(Trigger::ConcurrentDone);
        premature_ok.free_at_stw_start = 1 << 20;
        let mut halted = CycleStats::default();
        halted.trigger = Some(Trigger::AllocationFailure);
        halted.free_at_stw_start = 50 << 20; // irrelevant
        let log = GcLog {
            cycles: vec![premature_fail, premature_ok, halted],
        };
        assert!((log.free_space_failures(heap) - 1.0 / 3.0).abs() < 1e-9);
        assert!((log.avg_premature_free(heap) - 0.055).abs() < 1e-3);
    }

    #[test]
    fn normalized_cas_cost() {
        let mut c = CycleStats::default();
        c.cas_ops = 1000;
        c.live_after_bytes = 10 << 10; // 10 KB
        assert!((c.normalized_cas_cost() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn event_replay_roundtrips_bit_for_bit() {
        // Emit two synthetic cycles (awkward float values included) and
        // rebuild the log from the event stream.
        let tel = Telemetry::new(1024);
        let mut a = CycleStats {
            cycle: 1,
            trigger: Some(Trigger::AllocationFailure),
            pause_ms: 1.0 / 3.0,
            mark_ms: 0.1 + 0.2, // 0.30000000000000004
            sweep_ms: f64::MIN_POSITIVE,
            pause_wall: Duration::from_nanos(123_456_789),
            cards_wall: Duration::from_nanos(11_111),
            roots_wall: Duration::from_nanos(22_222),
            drain_wall: Duration::from_nanos(33_333),
            sweep_wall: Duration::from_nanos(44_444),
            clear_wall: Duration::from_nanos(55_555),
            straggler_wall: Duration::from_nanos(66_666),
            straggler_chunks: 7,
            concurrent_wall: Duration::from_micros(777),
            pre_concurrent_wall: Duration::from_millis(5),
            mutator_traced_bytes: u64::MAX / 3,
            occupancy_after: 0.6180339887498949,
            tracing_factor_sum: -0.0, // sign bit must survive
            ..CycleStats::default()
        };
        a.cards_cleaned_concurrent = 10;
        let b = CycleStats {
            cycle: 2,
            trigger: Some(Trigger::Baseline),
            packets_in_use_watermark: 42,
            packet_entries_watermark: 999,
            ..CycleStats::default()
        };
        emit_cycle_events(&tel, &a);
        emit_cycle_events(&tel, &b);
        let rebuilt = GcLog::from_events(&tel.events());
        assert_eq!(rebuilt.cycles.len(), 2);
        for (orig, got) in [&a, &b].into_iter().zip(&rebuilt.cycles) {
            assert_eq!(orig.cycle, got.cycle);
            assert_eq!(orig.trigger, got.trigger);
            assert_eq!(orig.pause_ms.to_bits(), got.pause_ms.to_bits());
            assert_eq!(orig.mark_ms.to_bits(), got.mark_ms.to_bits());
            assert_eq!(orig.sweep_ms.to_bits(), got.sweep_ms.to_bits());
            assert_eq!(
                orig.tracing_factor_sum.to_bits(),
                got.tracing_factor_sum.to_bits()
            );
            assert_eq!(
                orig.occupancy_after.to_bits(),
                got.occupancy_after.to_bits()
            );
            assert_eq!(orig.pause_wall, got.pause_wall);
            assert_eq!(orig.cards_wall, got.cards_wall);
            assert_eq!(orig.roots_wall, got.roots_wall);
            assert_eq!(orig.drain_wall, got.drain_wall);
            assert_eq!(orig.sweep_wall, got.sweep_wall);
            assert_eq!(orig.clear_wall, got.clear_wall);
            assert_eq!(orig.straggler_wall, got.straggler_wall);
            assert_eq!(orig.straggler_chunks, got.straggler_chunks);
            assert_eq!(orig.concurrent_wall, got.concurrent_wall);
            assert_eq!(orig.pre_concurrent_wall, got.pre_concurrent_wall);
            assert_eq!(orig.mutator_traced_bytes, got.mutator_traced_bytes);
            assert_eq!(orig.packets_in_use_watermark, got.packets_in_use_watermark);
            assert_eq!(orig.packet_entries_watermark, got.packet_entries_watermark);
        }
        // A batch with no CycleEnd (simulating wraparound loss) drops.
        let events: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| !(e.kind == EventKind::CycleEnd && e.cycle == 2))
            .collect();
        let partial = GcLog::from_events(&events);
        assert_eq!(partial.cycles.len(), 1);
        assert_eq!(partial.cycles[0].cycle, 1);
    }
}
