//! The kickoff and progress formulas (paper §3).
//!
//! * **Kickoff** (§3.1): start the concurrent phase when free memory
//!   drops below `(L + M) / K0`, where `L` predicts the bytes to be
//!   traced concurrently, `M` predicts the bytes on dirty cards, and `K0`
//!   is the desired allocator tracing rate.
//! * **Progress** (§3.1): at each increment, the current rate is
//!   `K = (M + L - T) / F` (`T` bytes traced so far, `F` free bytes);
//!   negative `K` means the predictions were underestimates and `K`
//!   becomes `Kmax`.
//! * **Background credit** (§3.2): `Best`, an exponential smoothing of
//!   the background threads' tracing-to-allocation ratio `B`, is
//!   subtracted from `K`; if tracing is behind (`K > K0`) the corrective
//!   term inflates the rate: `K + (K - K0) C`.
//!
//! All state is plain arithmetic; the collector wraps a [`Pacer`] in a
//! mutex and feeds it cycle-end observations.

use crate::config::GcConfig;

/// Exponential smoothing: `alpha` weights the newest observation.
fn smooth(est: f64, observed: f64, alpha: f64) -> f64 {
    est * (1.0 - alpha) + observed * alpha
}

/// A consistent snapshot of the pacer's §3 estimates, taken under the
/// collector's pacer lock (telemetry gauges, `gc_top`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PacerEstimates {
    /// Desired allocator tracing rate `K0`.
    pub k0: f64,
    /// Predicted bytes traced concurrently (`L`).
    pub l: f64,
    /// Predicted bytes on dirty cards (`M`).
    pub m: f64,
    /// Smoothed background tracing per allocated byte (`Best`).
    pub b: f64,
    /// Free-byte threshold `(L + M) / K0` that triggers kickoff.
    pub kickoff_threshold: f64,
}

/// Adaptive pacing state for the concurrent phase (paper §3).
#[derive(Clone, Debug)]
pub struct Pacer {
    k0: f64,
    kmax: f64,
    corrective: f64,
    alpha: f64,
    /// Prediction of bytes traced during the concurrent phase (`L`).
    l_est: f64,
    /// Prediction of bytes to scan on dirty cards (`M`).
    m_est: f64,
    /// Smoothed background tracing rate (`Best`): background bytes traced
    /// per byte allocated.
    b_est: f64,
}

impl Pacer {
    /// Creates a pacer from the collector configuration and heap size.
    pub fn new(config: &GcConfig, heap_bytes: usize) -> Pacer {
        Pacer {
            k0: config.tracing_rate,
            kmax: config.kmax(),
            corrective: config.corrective_factor,
            alpha: config.smoothing_alpha,
            l_est: heap_bytes as f64 * config.initial_live_fraction,
            m_est: heap_bytes as f64 * config.initial_dirty_fraction,
            b_est: 0.0,
        }
    }

    /// The desired allocator tracing rate `K0`.
    pub fn k0(&self) -> f64 {
        self.k0
    }

    /// Current `L` prediction, bytes.
    pub fn l_est(&self) -> f64 {
        self.l_est
    }

    /// Current `M` prediction, bytes.
    pub fn m_est(&self) -> f64 {
        self.m_est
    }

    /// Current `Best` (background tracing per allocated byte).
    pub fn b_est(&self) -> f64 {
        self.b_est
    }

    /// Kickoff formula (§3.1): the free-memory threshold (bytes) that
    /// triggers a new concurrent cycle. Evaluated once per cycle.
    pub fn kickoff_threshold(&self) -> f64 {
        (self.l_est + self.m_est) / self.k0
    }

    /// All §3 estimates as one snapshot.
    pub fn estimates(&self) -> PacerEstimates {
        PacerEstimates {
            k0: self.k0,
            l: self.l_est,
            m: self.m_est,
            b: self.b_est,
            kickoff_threshold: self.kickoff_threshold(),
        }
    }

    /// True if a new cycle should start given current free bytes.
    pub fn should_kickoff(&self, free_bytes: u64) -> bool {
        (free_bytes as f64) < self.kickoff_threshold()
    }

    /// Progress formula (§3.1–§3.2): the tracing rate for the next
    /// increment, given `traced` bytes traced so far this phase and
    /// `free` bytes of free memory.
    ///
    /// Returns 0 when the background threads are keeping up by
    /// themselves.
    pub fn tracing_rate(&self, traced: u64, free: u64) -> f64 {
        let free = (free as f64).max(1.0);
        let mut k = (self.m_est + self.l_est - traced as f64) / free;
        if k < 0.0 {
            // L or M underestimated: go as fast as allowed.
            k = self.kmax;
        }
        // §3.2: credit the background threads.
        if k < self.b_est {
            return 0.0;
        }
        k -= self.b_est;
        // §3.2: corrective term when behind schedule.
        if k > self.k0 {
            k += (k - self.k0) * self.corrective;
        }
        k.min(self.kmax)
    }

    /// Work quota (bytes of tracing) for an increment that allocated
    /// `allocated` bytes.
    pub fn increment_quota(&self, allocated: u64, traced: u64, free: u64) -> u64 {
        (self.tracing_rate(traced, free) * allocated as f64) as u64
    }

    /// Feeds the observed background tracing-to-allocation ratio for a
    /// window of time (§3.2: "we occasionally calculate B, and reevaluate
    /// Best").
    pub fn observe_background(&mut self, bg_traced: u64, allocated: u64) {
        if allocated == 0 {
            return;
        }
        let b = bg_traced as f64 / allocated as f64;
        self.b_est = smooth(self.b_est, b, self.alpha);
    }

    /// Feeds a finished cycle's actual `L` (bytes traced concurrently)
    /// and `M` (bytes scanned on dirty cards) to refine the predictions.
    pub fn end_cycle(&mut self, actual_l: u64, actual_m: u64) {
        self.l_est = smooth(self.l_est, actual_l as f64, self.alpha);
        self.m_est = smooth(self.m_est, actual_m as f64, self.alpha).max(1.0);
        // A fresh cycle starts with no background history bias; keep Best
        // (it tracks machine idle capacity, not cycle shape).
    }
}

/// Pacing for the background sweeper, in the spirit of the §3.2
/// background-tracing credit: the sweeper should soak idle cycles, not
/// race the mutators for chunks they are already claiming themselves.
/// It watches the heap's cumulative sweep-on-refill chunk counter — if
/// refills swept since the sweeper's last look, the allocators are
/// keeping up (they self-serve exactly when they need memory) and the
/// sweeper parks for that turn; once refills go quiet it drains.
/// Each background thread owns its own pacer (plain state, no sharing).
#[derive(Copy, Clone, Debug, Default)]
pub struct BgSweepPacer {
    last_refill_chunks: u64,
}

impl BgSweepPacer {
    /// Creates a pacer with no refill history.
    pub fn new() -> BgSweepPacer {
        BgSweepPacer::default()
    }

    /// Decides whether the background sweeper should drain a batch this
    /// turn, given the heap's current cumulative refill-swept chunk
    /// count. Also records the count for the next decision.
    pub fn should_drain(&mut self, refill_chunks_now: u64) -> bool {
        let prev = self.last_refill_chunks;
        self.last_refill_chunks = refill_chunks_now;
        refill_chunks_now == prev
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::config::GcConfig;

    fn pacer(heap: usize) -> Pacer {
        Pacer::new(&GcConfig::default(), heap)
    }

    #[test]
    fn kickoff_threshold_is_l_plus_m_over_k0() {
        let p = pacer(100 << 20);
        let expect = (p.l_est() + p.m_est()) / 8.0;
        assert!((p.kickoff_threshold() - expect).abs() < 1e-6);
        assert!(p.should_kickoff((expect as u64).saturating_sub(1)));
        assert!(!p.should_kickoff(expect as u64 + 1024));
    }

    #[test]
    fn rate_one_starts_immediately() {
        // §6.2: "at tracing rate 1 CGC will start immediately after the
        // stop-the-world phase is terminated" — threshold ≈ L + M covers
        // all plausible free space.
        let mut cfg = GcConfig::default();
        cfg.tracing_rate = 1.0;
        let heap = 100 << 20;
        let p = Pacer::new(&cfg, heap);
        // Free space right after GC at 60% residency is 40% of the heap;
        // threshold L+M = 37% — close; with the cycle history converging to
        // real L (~60%), kickoff is immediate.
        let mut p2 = p.clone();
        p2.end_cycle(60 << 20, 2 << 20);
        assert!(p2.should_kickoff((40u64) << 20));
    }

    #[test]
    fn progress_rate_decreases_as_tracing_advances() {
        let p = pacer(100 << 20);
        let free = 10u64 << 20;
        let early = p.tracing_rate(0, free);
        let late = p.tracing_rate(30 << 20, free);
        assert!(early > late, "{early} vs {late}");
    }

    #[test]
    fn negative_k_means_underestimate_and_clamps_to_kmax() {
        let p = pacer(100 << 20);
        // traced far beyond L + M
        let k = p.tracing_rate(90 << 20, 10 << 20);
        assert_eq!(k, 16.0, "Kmax = 2 * K0");
    }

    #[test]
    fn background_credit_reduces_mutator_rate() {
        let mut p = pacer(100 << 20);
        let free = 50u64 << 20;
        let before = p.tracing_rate(0, free);
        // Background does 30% of the allocation volume in tracing.
        for _ in 0..20 {
            p.observe_background(3 << 20, 10 << 20);
        }
        let after = p.tracing_rate(0, free);
        assert!(after < before);
        assert!((p.b_est() - 0.3).abs() < 0.01);
    }

    #[test]
    fn background_doing_everything_means_zero_mutator_rate() {
        let mut p = pacer(100 << 20);
        for _ in 0..30 {
            p.observe_background(100 << 20, 10 << 20); // B = 10
        }
        assert_eq!(p.tracing_rate(0, 60 << 20), 0.0);
    }

    #[test]
    fn corrective_term_inflates_when_behind() {
        let p = pacer(100 << 20);
        // free small, nothing traced: K raw = 37 MB/4 MB ≈ 9.25 > K0=8
        let free = 4u64 << 20;
        let raw = (p.m_est() + p.l_est()) / free as f64;
        assert!(raw > 8.0);
        let k = p.tracing_rate(0, free);
        let expect = (raw + (raw - 8.0) * 0.5).min(16.0);
        assert!((k - expect).abs() < 1e-9, "{k} vs {expect}");
    }

    #[test]
    fn end_cycle_converges_estimates() {
        let mut p = pacer(100 << 20);
        for _ in 0..50 {
            p.end_cycle(20 << 20, 1 << 20);
        }
        assert!((p.l_est() - (20u64 << 20) as f64).abs() < (1u64 << 18) as f64);
        assert!((p.m_est() - (1u64 << 20) as f64).abs() < (1u64 << 15) as f64);
    }

    #[test]
    fn bg_sweep_pacer_parks_while_refills_progress() {
        let mut p = BgSweepPacer::new();
        assert!(p.should_drain(0), "no history: drain");
        assert!(!p.should_drain(3), "refills swept since last look: park");
        assert!(!p.should_drain(5), "still advancing: park");
        assert!(p.should_drain(5), "refills quiet: drain");
        assert!(p.should_drain(5), "stays draining while quiet");
    }

    #[test]
    fn quota_scales_with_allocation() {
        let p = pacer(100 << 20);
        let q1 = p.increment_quota(32 << 10, 0, 20 << 20);
        let q2 = p.increment_quota(64 << 10, 0, 20 << 20);
        assert!((q2 as i64 - 2 * q1 as i64).abs() <= 1, "{q2} vs 2*{q1}");
    }
}
