//! Per-mutator shared state: the shadow stack (scanned as GC roots), the
//! allocation cache, and the stop-the-world rendezvous bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering};

use mcgc_heap::{AllocCache, ObjectRef};
use mcgc_membar::sync::Mutex;

/// State a mutator shares with the collector.
///
/// The JVM scans thread stacks conservatively; the substrate equivalent
/// is an explicit *shadow stack* of root slots the workload maintains.
/// It is mutex-protected so the concurrent phase can scan a stack while
/// its thread runs (§2.1 scans each stack once, as late as possible) and
/// the stop-the-world phase can rescan every stack.
#[derive(Debug)]
pub struct MutatorShared {
    /// Dense mutator id (index into per-cycle bookkeeping).
    pub id: u64,
    /// The shadow stack. Slot value 0 encodes null.
    pub(crate) roots: Mutex<Vec<u64>>,
    /// The allocation cache; the collector retires it at stop-the-world.
    pub(crate) cache: Mutex<AllocCache>,
    /// Cycle number whose concurrent phase has scanned this stack
    /// (0 = never).
    pub(crate) stack_scanned_cycle: AtomicU64,
    /// Latest §5.3 handshake epoch this mutator has fenced for (acked at
    /// safepoint polls; the collector times out on laggards).
    pub(crate) handshake_seen: AtomicU64,
    /// Nonzero while the thread is parked in a [`Mutator::blocked`] safe
    /// region (think time, I/O). A parked mutator cannot poll, but it
    /// also has no unpublished heap writes — the release store of this
    /// flag orders everything it did before parking — so the card
    /// handshake treats it as implicitly acked instead of timing out.
    pub(crate) safe_parked: AtomicU64,
}

impl MutatorShared {
    pub(crate) fn new(id: u64) -> MutatorShared {
        MutatorShared {
            id,
            roots: Mutex::new(Vec::new()),
            cache: Mutex::new(AllocCache::new()),
            stack_scanned_cycle: AtomicU64::new(0),
            handshake_seen: AtomicU64::new(0),
            safe_parked: AtomicU64::new(0),
        }
    }

    /// Enters a parked safe region. The release ordering publishes every
    /// heap write made before parking, which is what lets the card
    /// handshake treat a parked mutator as pre-acked.
    pub(crate) fn park_safe(&self) {
        self.safe_parked.fetch_add(1, Ordering::Release);
    }

    /// Leaves the parked safe region (call after acking any pending
    /// handshake, so the collector never sees neither flag nor ack).
    pub(crate) fn unpark_safe(&self) {
        self.safe_parked.fetch_sub(1, Ordering::Release);
    }

    /// True while the thread is parked in a safe region.
    pub(crate) fn is_safe_parked(&self) -> bool {
        self.safe_parked.load(Ordering::Acquire) != 0
    }

    /// Attempts to claim this stack's once-per-cycle concurrent scan
    /// (§2.1). Returns true if the caller must perform the scan.
    pub(crate) fn claim_stack_scan(&self, cycle: u64) -> bool {
        let prev = self.stack_scanned_cycle.load(Ordering::Relaxed);
        prev < cycle
            && self
                .stack_scanned_cycle
                .compare_exchange(prev, cycle, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    /// True if this stack was scanned during `cycle`'s concurrent phase.
    pub(crate) fn stack_scanned(&self, cycle: u64) -> bool {
        self.stack_scanned_cycle.load(Ordering::Relaxed) >= cycle
    }

    /// Snapshots the non-null roots and their count (slots scanned).
    pub(crate) fn snapshot_roots(&self) -> (Vec<ObjectRef>, usize) {
        let roots = self.roots.lock();
        let refs = roots
            .iter()
            .filter_map(|&raw| ObjectRef::decode(raw))
            .collect();
        (refs, roots.len())
    }
}

/// Stop-the-world rendezvous state, guarded by one mutex with a condvar.
///
/// Every registered thread (mutator or background) is either *unsafe*
/// (running code that may touch the heap) or *safe* (parked at a
/// safepoint, blocked in a think-time region, or waiting for the GC
/// coordinator lock). The coordinator stops the world by setting `stop`
/// and waiting until every other registered thread is safe.
#[derive(Debug, Default)]
pub struct StwSync {
    /// Threads currently safe.
    pub safe: usize,
    /// Total registered threads (mutators + background threads).
    pub registered: usize,
    /// A coordinator wants (or holds) the world stopped.
    pub stop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_scan_claim_is_once_per_cycle() {
        let m = MutatorShared::new(0);
        assert!(!m.stack_scanned(1));
        assert!(m.claim_stack_scan(1));
        assert!(!m.claim_stack_scan(1), "second claim fails");
        assert!(m.stack_scanned(1));
        assert!(m.claim_stack_scan(2), "new cycle, new scan");
    }

    #[test]
    fn snapshot_skips_nulls() {
        let m = MutatorShared::new(0);
        {
            let mut r = m.roots.lock();
            r.push(0);
            r.push(ObjectRef::encode(Some(ObjectRef::from_granule(5))));
            r.push(0);
        }
        let (refs, slots) = m.snapshot_roots();
        assert_eq!(slots, 3);
        assert_eq!(refs, vec![ObjectRef::from_granule(5)]);
    }
}
