//! The unified GC scheduler: one persistent worker pool serving every
//! worker world — the parallel stop-the-world pause (paper §2.2, §6),
//! the low-priority background tracers (§3), and the background sweeper
//! that drains lazy sweep epochs between cycles.
//!
//! Before this module the reproduction had accreted three separate
//! scheduling mechanisms: a pause *gang* (epoch dispatch with a condvar
//! barrier per phase), dedicated background tracer threads with their
//! own spawn/wakeup path, and the §4 packet pool's ad-hoc claim loops.
//! The gang's per-phase `notify_all` + barrier round-trips were
//! measurable pause overhead (on a single-CPU runner one delayed helper
//! stalls every phase barrier in turn), and a worker that finished root
//! rescanning early parked instead of stealing the next unit of work.
//!
//! The scheduler replaces all of that with **sessions of prioritized
//! work buckets**:
//!
//! - [`Scheduler`] owns one pool of persistent threads
//!   (`mcgc-sched-{i}`), sized to cover both the pause helpers
//!   (`stw_workers - 1`) and, in concurrent mode, the background
//!   tracer/sweeper duties (`background_threads`). Between duties they
//!   park on a single shared condvar.
//! - A pause (or a pre-pause straggler fence) opens a **session**
//!   ([`Scheduler::open_session`]) under the coordinator lock. Opening
//!   issues exactly **one** `notify_all`; that is the only wakeup the
//!   entire pause pays.
//! - Each phase publishes one **bucket** ([`Session::run`]) — final
//!   card cleaning, root rescanning, packet drain, sweep, straggler
//!   chunks, bitmap clears. Publishing bumps a sequence number under
//!   the state mutex and does **not** notify: workers that the session
//!   wakeup engaged stay resident, claiming each new bucket the moment
//!   it appears, so a fast worker flows from root rescan straight into
//!   the packet drain with no condvar round-trip. Work *within* a
//!   bucket is claimed from atomic cursors by the closures themselves
//!   (load balancing identical to the packet pool's).
//! - A bucket **drains** (its successor may open) when its closure has
//!   returned on the leader and `executing == 0` — no worker is still
//!   inside it. The leader waits for that with a bounded spin-yield,
//!   not a condvar: the wait is the tail of the slowest claimer's
//!   current slice, and making it lock-free keeps the zero-wakeup
//!   property exact.
//!
//! **Bucket open/close conditions.** Buckets open strictly in the
//! order the leader publishes them (phase ordering *is* the publish
//! order), a bucket closes to new claims the instant the leader clears
//! `job` in [`DrainGuard::drop`], and `bucket_seq` is monotone so no
//! bucket can be claimed twice by the same worker or re-open after it
//! drained. Only this module writes those fields — a lint rule
//! (`crates/lint`) enforces that bucket state never flips outside the
//! scheduler API.
//!
//! **Leader independence.** The leader runs every bucket itself
//! (worker 0) and never waits for helpers to *start* — only for
//! claimed slices to *finish*. A pool worker that is stalled, busy with
//! tracer duties, or simply not scheduled costs parallelism, never
//! progress; with `stw_workers = 1` no session worker exists and
//! [`Session::run`] degenerates to exactly the serial inline pause.
//!
//! **Panic discipline.** If the *leader's* slice unwinds, the
//! [`DrainGuard`] still closes the bucket (clearing the job before the
//! dispatching frame — which owns the lifetime-erased closure — is torn
//! down) and the panic propagates. If a *pool worker's* slice unwinds,
//! the process aborts: a worker that died without leaving the bucket
//! would strand the leader's drain wait forever, so the failure is made
//! loud instead.
//!
//! **Model checking.** The session/bucket protocol — the single open
//! wakeup, claim-vs-drain ordering, the park predicate, shutdown, and
//! both panic paths — is mirrored by `sched_model` in `crates/check`
//! and explored exhaustively (`cargo run -p mcgc-check`). Its mutation
//! matrix deletes each load-bearing line in turn and proves the checker
//! catches every one. When editing the protocol here, change the model
//! in the same commit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mcgc_membar::sync::{Condvar, Mutex};
use mcgc_telemetry::{SpanKind, SpanRecorder};

use crate::collector::Gc;
use crate::config::CollectorMode;
use crate::pacing::BgSweepPacer;
use crate::tracing::TraceRole;

/// Which kind of GC work a bucket carries. Purely a label: the bucket's
/// closure carries the actual work; the label feeds per-bucket
/// run/item accounting (and makes progress visible in thread dumps).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Bucket {
    /// Final card cleaning (§2.2), including redirty/re-clean passes.
    Cards,
    /// Stack + global root rescanning (§2.2).
    Roots,
    /// Packet drain to mark completion (§2.2, §4).
    Drain,
    /// Eager bitwise sweep (§2.2).
    Sweep,
    /// Watchdog recovery: flood marked objects' cards.
    Flood,
    /// End-of-pause mark-bit pre-clear.
    ClearBits,
    /// Pre-pause straggler fence: drain the previous sweep epoch's
    /// unswept chunks so the pause itself contains no bulk sweep.
    Straggler,
}

impl Bucket {
    pub(crate) const COUNT: usize = 7;

    pub(crate) fn index(self) -> usize {
        match self {
            Bucket::Cards => 0,
            Bucket::Roots => 1,
            Bucket::Drain => 2,
            Bucket::Sweep => 3,
            Bucket::Flood => 4,
            Bucket::ClearBits => 5,
            Bucket::Straggler => 6,
        }
    }

    /// Metric-name fragment for the per-bucket counters.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Bucket::Cards => "cards",
            Bucket::Roots => "roots",
            Bucket::Drain => "drain",
            Bucket::Sweep => "sweep",
            Bucket::Flood => "flood",
            Bucket::ClearBits => "clear_bits",
            Bucket::Straggler => "straggler",
        }
    }

    pub(crate) fn from_index(i: usize) -> Bucket {
        match i {
            0 => Bucket::Cards,
            1 => Bucket::Roots,
            2 => Bucket::Drain,
            3 => Bucket::Sweep,
            4 => Bucket::Flood,
            5 => Bucket::ClearBits,
            _ => Bucket::Straggler,
        }
    }
}

/// A published bucket closure: a borrowed closure with its lifetime
/// erased. The `'static` here is a lie told to the type system only;
/// see the SAFETY comment in [`Session::run`] for why no worker can
/// outlive the real borrow.
type Job = &'static (dyn Fn(usize) + Sync);

/// The protocol state. Every field is guarded by one mutex — the
/// protocol itself needs no atomics, which keeps the TSan/Miri story
/// trivial and makes `sched_model`'s state space small.
struct SchedState {
    /// Bumped once per [`Scheduler::open_session`]. Monotone.
    session: u64,
    /// A session is open: session-role workers stay resident, claiming
    /// buckets as they are published, instead of parking.
    open: bool,
    /// Bumped once per published bucket. Monotone across sessions; a
    /// worker records the last value it claimed, so no bucket is ever
    /// claimed twice by the same worker or re-claimed after draining.
    bucket_seq: u64,
    /// The open bucket's closure, present from publish until the drain
    /// guard closes the bucket. `None` means "closed to new claims".
    job: Option<Job>,
    /// Label of the open bucket (index into [`Bucket`]).
    bucket: usize,
    /// Workers currently inside the open bucket's closure.
    executing: usize,
    shutdown: bool,
}

struct SchedShared {
    state: Mutex<SchedState>,
    /// The pool's single park point: session opening notifies it once
    /// per pause; concurrent-phase kickoff notifies it so tracers
    /// engage immediately; shutdown notifies it to release everyone.
    wake_cv: Condvar,
    /// Work items claimed per pause worker (slot 0 = the pause leader),
    /// for the utilization telemetry.
    claimed: Box<[AtomicU64]>,
    /// Bucket runs per [`Bucket`] label.
    // MODEL: sched_model — pure statistics: never read back by the
    // protocol, so Relaxed suffices and the model omits them.
    bucket_runs: [AtomicU64; Bucket::COUNT],
    /// Work items claimed per [`Bucket`] label (leader + workers).
    // MODEL: sched_model — pure statistics, as above.
    bucket_items: [AtomicU64; Bucket::COUNT],
    /// Sessions opened.
    // MODEL: sched_model — pure statistics, as above.
    sessions: AtomicU64,
    /// Per-worker wakeups issued by session opens: each open adds the
    /// session-worker count (the upper bound of threads its single
    /// `notify_all` can release). The pause_shape tests assert this
    /// stays ≤ `pauses × (stw_workers - 1)` — the zero-per-phase-wakeup
    /// property.
    // MODEL: sched_model — pure statistics, as above.
    wakeups: AtomicU64,
    /// Workers that hit the `sched.stall` chaos site.
    // MODEL: sched_model — pure statistics, as above.
    stalls: AtomicU64,
    /// Flight recorder, attached once by the collector after
    /// construction. Workers record `sched.job` spans (arg = work items
    /// claimed) on their own tracks; the leader records each bucket and
    /// its drain wait.
    spans: OnceLock<Arc<SpanRecorder>>,
}

impl SchedShared {
    fn recorder(&self) -> Option<&SpanRecorder> {
        self.spans.get().map(Arc::as_ref).filter(|r| r.is_enabled())
    }
}

/// The unified scheduler. One per [`crate::Gc`]; sessions are opened
/// only by the pause/fence leader (who holds the coordinator lock), so
/// they never overlap.
pub(crate) struct Scheduler {
    shared: Arc<SchedShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Pause workers including the leader (`stw_workers`, `>= 1`).
    workers: usize,
    /// Pool threads serving pause sessions (`workers - 1`).
    session_workers: usize,
    /// Pool threads with background tracer/sweeper duties.
    concurrent_workers: usize,
}

impl Scheduler {
    /// Creates the scheduler *without* spawning its pool — the workers
    /// need the `Arc<Gc>` (for safepoint registration and tracer
    /// duties), so [`Scheduler::start`] runs after `Gc` construction.
    pub(crate) fn new(
        stw_workers: usize,
        mode: CollectorMode,
        background_threads: usize,
    ) -> Scheduler {
        let workers = stw_workers.max(1);
        let concurrent_workers = if mode == CollectorMode::Concurrent {
            background_threads
        } else {
            0
        };
        let shared = Arc::new(SchedShared {
            state: Mutex::new(SchedState {
                session: 0,
                open: false,
                bucket_seq: 0,
                job: None,
                bucket: 0,
                executing: 0,
                shutdown: false,
            }),
            wake_cv: Condvar::new(),
            claimed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            bucket_runs: std::array::from_fn(|_| AtomicU64::new(0)),
            bucket_items: std::array::from_fn(|_| AtomicU64::new(0)),
            sessions: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            spans: OnceLock::new(),
        });
        Scheduler {
            shared,
            handles: Mutex::new(Vec::new()),
            workers,
            session_workers: workers - 1,
            concurrent_workers,
        }
    }

    /// Spawns the pool: `max(session_workers, concurrent_workers)`
    /// threads named `mcgc-sched-{i}`. Thread `i` serves pause sessions
    /// iff `i < session_workers` and carries background tracer/sweeper
    /// duties iff `i < concurrent_workers`. They park immediately and
    /// cost nothing until the first session or kickoff.
    pub(crate) fn start(&self, gc: &Arc<Gc>) {
        let pool = self.session_workers.max(self.concurrent_workers);
        let mut handles = self.handles.lock();
        debug_assert!(handles.is_empty(), "scheduler started twice");
        for idx in 0..pool {
            let gc = Arc::clone(gc);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mcgc-sched-{idx}"))
                    .spawn(move || worker_loop(&gc, idx))
                    .expect("spawn scheduler worker"),
            );
        }
    }

    /// Pause workers including the leader.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Pool threads spawned by [`Scheduler::start`].
    pub(crate) fn pool_threads(&self) -> usize {
        self.session_workers.max(self.concurrent_workers)
    }

    /// Attaches the flight recorder (first caller wins; later calls are
    /// no-ops). Kept out of `new` so test construction sites don't need
    /// a recorder.
    pub(crate) fn attach_spans(&self, rec: Arc<SpanRecorder>) {
        let _ = self.shared.spans.set(rec);
    }

    /// Opens a work-bucket session: the one wakeup a pause (or a
    /// pre-pause straggler fence) pays. Must be called by the leader
    /// under the coordinator lock; sessions never overlap. Workers stay
    /// resident, claiming each bucket published via [`Session::run`],
    /// until the returned guard drops (closing the session).
    pub(crate) fn open_session(&self) -> Session<'_> {
        // MODEL: sched_model — pure statistics, never read back.
        self.shared.sessions.fetch_add(1, Ordering::Relaxed);
        if self.session_workers > 0 {
            let mut st = self.shared.state.lock();
            debug_assert!(!st.open, "sessions overlapped");
            st.session += 1;
            st.open = true;
            // The single per-pause wakeup. Every phase bucket after this
            // is published without a notify: resident workers observe
            // the new `bucket_seq` and flow straight into it.
            // MODEL: sched_model — MissedOpenNotify deletes this wake;
            // parked workers sleep through the session (ordinary buckets
            // degrade to leader-only, and the participation scenario's
            // rendezvous bucket deadlocks).
            self.shared.wake_cv.notify_all();
            self.shared
                .wakeups
                .fetch_add(self.session_workers as u64, Ordering::Relaxed);
        }
        Session { sched: self }
    }

    /// Credits `n` claimed work items to pause worker `worker`
    /// (utilization stats; also folded into the per-bucket item
    /// counters by the span epilogue).
    pub(crate) fn add_claimed(&self, worker: usize, n: u64) {
        self.shared.claimed[worker].fetch_add(n, Ordering::Relaxed);
    }

    /// Work items claimed per pause worker since construction (slot 0 =
    /// the pause leader).
    pub(crate) fn claimed_per_worker(&self) -> Vec<u64> {
        self.shared
            .claimed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket runs so far for `bucket`.
    pub(crate) fn bucket_runs(&self, bucket: Bucket) -> u64 {
        self.shared.bucket_runs[bucket.index()].load(Ordering::Relaxed)
    }

    /// Work items claimed so far for `bucket` (all workers).
    pub(crate) fn bucket_items(&self, bucket: Bucket) -> u64 {
        self.shared.bucket_items[bucket.index()].load(Ordering::Relaxed)
    }

    /// Sessions opened so far.
    pub(crate) fn sessions_total(&self) -> u64 {
        // MODEL: sched_model — pure statistics, never read back.
        self.shared.sessions.load(Ordering::Relaxed)
    }

    /// Per-worker wakeups issued by session opens so far.
    pub(crate) fn wakeups_total(&self) -> u64 {
        // MODEL: sched_model — pure statistics, never read back.
        self.shared.wakeups.load(Ordering::Relaxed)
    }

    /// Times a worker hit the `sched.stall` chaos site.
    pub(crate) fn stalls(&self) -> u64 {
        // MODEL: sched_model — pure statistics, never read back.
        self.shared.stalls.load(Ordering::Relaxed)
    }

    /// Workers currently inside a bucket closure (queue-depth gauge).
    pub(crate) fn active_workers(&self) -> usize {
        self.shared.state.lock().executing
    }

    /// Whether a session is currently open (gauge).
    pub(crate) fn session_open(&self) -> bool {
        self.shared.state.lock().open
    }

    /// Wakes the pool at concurrent-phase kickoff so tracer-role
    /// workers engage from the phase's first moment. Gated on the
    /// concurrent role existing: in stop-the-world mode this is a no-op,
    /// preserving the one-wakeup-per-pause property exactly.
    pub(crate) fn kickoff_wake(&self) {
        if self.concurrent_workers == 0 {
            return;
        }
        // Taking the state lock orders this notify against any worker's
        // predicate-check-then-wait, closing the check-then-park race
        // (the phase flag is set before this call; a worker either sees
        // it under the lock or is parked and receives the notify).
        let _st = self.shared.state.lock();
        self.shared.wake_cv.notify_all();
    }

    /// Parks a pool worker for up to `d` (or until a session opens /
    /// shutdown / `wake_if` holds). The predicate is re-checked under
    /// the state lock, so a kickoff or session open between the check
    /// and the wait cannot be missed.
    fn park(&self, d: Option<Duration>, wake_if: impl Fn() -> bool) {
        let mut st = self.shared.state.lock();
        loop {
            // MODEL: sched_model — ParkMissesOpen hoists this predicate
            // out of the lock (check-then-park) and the model finds the
            // worker asleep after the shutdown notify: a join deadlock.
            if st.shutdown || st.open || wake_if() {
                return;
            }
            if let Some(d) = d {
                self.shared.wake_cv.wait_for(&mut st, d);
                return;
            }
            self.shared.wake_cv.wait(&mut st);
        }
    }

    /// Serves the open session: claims each bucket the leader publishes
    /// until the session closes. Called with the worker counted *safe*,
    /// so the stopped world's pause work proceeds while the rendezvous
    /// still counts this thread as parked.
    fn serve(&self, idx: usize, last_seq: &mut u64) {
        // Short-yield first — the next bucket usually appears within the
        // leader's inter-phase bookkeeping — then fall back to a brief
        // timed wait so a large pool never turns a 1-CPU pause into a
        // yield storm (the old gang's 233 ms outlier mode).
        let mut spins = 0u32;
        loop {
            let claim = {
                let mut st = self.shared.state.lock();
                if st.shutdown || (!st.open && st.job.is_none()) {
                    return;
                }
                match st.job {
                    // MODEL: sched_model — SplitClaim drops the
                    // `last_seq` dedup and the model finds a bucket's
                    // closure run twice by one worker (a double-claimed
                    // work item).
                    Some(job) if st.bucket_seq != *last_seq => {
                        *last_seq = st.bucket_seq;
                        st.executing += 1;
                        Some((job, Bucket::from_index(st.bucket)))
                    }
                    _ => None,
                }
            };
            let Some((job, bucket)) = claim else {
                spins += 1;
                if spins < 64 {
                    std::thread::yield_now();
                } else {
                    let mut st = self.shared.state.lock();
                    if st.open || st.job.is_some() {
                        self.shared
                            .wake_cv
                            .wait_for(&mut st, Duration::from_micros(50));
                    }
                }
                continue;
            };
            spins = 0;
            // Chaos: a worker stalls after claiming an open bucket
            // (payload = milliseconds). The pause must still complete —
            // the leader and the remaining workers drain the bucket's
            // cursors — delayed at most by the bounded sleep at the
            // drain wait.
            if mcgc_fault::point!("sched.stall") {
                // MODEL: sched_model — pure statistics, never read back.
                self.shared.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(
                    mcgc_fault::payload("sched.stall").max(1),
                ));
            }
            // A worker must never unwind out of a claimed bucket: dying
            // without leaving it would hang the leader's drain wait —
            // and the whole stopped world — forever. A panic in a GC
            // job is not recoverable, so surface it (the panic hook has
            // already printed the message and backtrace) and abort.
            // MODEL: sched_model — PanicNoAbort lets the worker die
            // silently instead; the model shows the leader stranded at
            // its drain wait.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_slice_with_span(&self.shared, self.shared.recorder(), idx + 1, bucket, job);
            }))
            .is_err()
            {
                eprintln!("mcgc-sched-{idx}: panic in GC work; aborting");
                std::process::abort();
            }
            self.shared.state.lock().executing -= 1;
        }
    }

    /// Stops and joins the pool threads. Idempotent, and safe to race
    /// with a session: workers finish any bucket slice they claimed
    /// (the drain guard waits them out) before exiting, and a
    /// [`Session::run`] that observes the shutdown flag executes its
    /// bucket inline instead of publishing.
    pub(crate) fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            // MODEL: sched_model — MissedShutdownNotify deletes this
            // wake and the model finds a parked worker sleeping forever:
            // the join below deadlocks.
            self.shared.wake_cv.notify_all();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("pool_threads", &self.pool_threads())
            .field("sessions", &self.sessions_total())
            .finish()
    }
}

/// An open work-bucket session. Publishes buckets via [`Session::run`];
/// dropping it closes the session (resident workers park again). No
/// notify is needed to close: workers observe `open == false` under the
/// state lock.
pub(crate) struct Session<'a> {
    sched: &'a Scheduler,
}

impl Session<'_> {
    /// Publishes one bucket: the leader runs `f(0)` itself while
    /// resident workers claim the same closure with their worker index;
    /// returns once the bucket has drained (every claimed slice
    /// finished). No condvar is touched: publish is a sequence-number
    /// bump, the drain wait is a bounded spin.
    ///
    /// With no session workers (`stw_workers = 1`) or after shutdown,
    /// runs `f(0)` inline — byte-for-byte the serial pause.
    pub(crate) fn run(&self, bucket: Bucket, f: impl Fn(usize) + Sync) {
        let shared = &self.sched.shared;
        shared.bucket_runs[bucket.index()].fetch_add(1, Ordering::Relaxed);
        let rec = shared.recorder();
        let _bucket_span = rec.map(|r| r.span(SpanKind::SchedBucket, bucket.index() as u64));
        if self.sched.session_workers == 0 {
            run_slice_with_span(shared, rec, 0, bucket, &f);
            return;
        }
        {
            let job: &(dyn Fn(usize) + Sync) = &f;
            // SAFETY: erasing the borrow's lifetime to 'static is sound
            // because this frame — which owns `f`, the referent of the
            // erased reference — is not torn down until the drain guard
            // observes `executing == 0` with `job` already cleared,
            // i.e. until every worker that claimed the bucket has left
            // it and no further claim is possible. The guard runs from
            // `DrainGuard::drop`, so it closes on the unwind path too:
            // a panic in the leader's `f(0)` below still drains the
            // bucket before the frame is freed.
            let job: Job = unsafe { std::mem::transmute(job) };
            let mut st = shared.state.lock();
            if st.shutdown {
                // Shutdown raced ahead of this session: workers are
                // exiting (or already joined), so nobody would claim the
                // bucket. Run it inline instead of publishing into an
                // empty pool. Note the claims-based drain makes even a
                // post-shutdown publish *safe* (the leader runs its own
                // slice and the guard sees `executing == 0`) — the
                // fallback avoids the pointless publication, it is not
                // load-bearing for soundness.
                // MODEL: sched_model — the shutdown_race scenario
                // explores this interleaving (the leader's L_PUBLISH
                // takes the inline path when the closer's shutdown
                // lands first).
                drop(st);
                run_slice_with_span(shared, rec, 0, bucket, &f);
                return;
            }
            debug_assert!(
                st.job.is_none() && st.executing == 0,
                "bucket published before its predecessor drained"
            );
            // MODEL: sched_model — OpenBeforeDrained publishes while
            // `executing > 0` and the model reports a dangling bucket
            // closure.
            st.job = Some(job);
            st.bucket = bucket.index();
            st.bucket_seq += 1;
            // No notify: the session's opening wakeup made the workers
            // resident; they observe the new `bucket_seq` and claim.
        }
        /// Closes the bucket on drop — on the normal path and,
        /// critically, on unwind (see the SAFETY comment above). `job`
        /// is cleared *first* (no new claim can start), then the spin
        /// waits out workers already inside.
        /// MODEL: sched_model — UnwindPastDrain deletes this guard and
        /// the model reports a dangling bucket closure; WaitBeforeClear
        /// swaps the two steps and a late claim races the teardown.
        struct DrainGuard<'a>(&'a SchedShared, Option<&'a SpanRecorder>, usize);
        impl Drop for DrainGuard<'_> {
            fn drop(&mut self) {
                let _wait = self
                    .1
                    .map(|r| r.span(SpanKind::SchedDrainWait, self.2 as u64));
                self.0.state.lock().job = None;
                loop {
                    if self.0.state.lock().executing == 0 {
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
        let guard = DrainGuard(shared, rec, bucket.index());
        // The leader is worker 0 and pulls from the same cursors.
        run_slice_with_span(shared, rec, 0, bucket, &f);
        drop(guard);
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if self.sched.session_workers == 0 {
            return;
        }
        let mut st = self.sched.shared.state.lock();
        debug_assert!(st.job.is_none(), "session closed with a bucket open");
        st.open = false;
    }
}

/// Runs one worker's slice of a bucket under a `sched.job` span whose
/// arg is the work items the worker claimed while inside it (read from
/// the per-worker claim counters before and after); the delta also
/// feeds the per-bucket item counter.
fn run_slice_with_span(
    shared: &SchedShared,
    rec: Option<&SpanRecorder>,
    idx: usize,
    bucket: Bucket,
    job: &(dyn Fn(usize) + Sync),
) {
    let before = shared.claimed[idx].load(Ordering::Relaxed);
    let mut span = rec.map(|r| r.span(SpanKind::SchedJob, 0));
    job(idx);
    let after = shared.claimed[idx].load(Ordering::Relaxed);
    let items = after.saturating_sub(before);
    shared.bucket_items[bucket.index()].fetch_add(items, Ordering::Relaxed);
    if let Some(s) = span.as_mut() {
        s.set_arg(items);
    }
}

/// Pool worker main loop: serve pause sessions (if session-role), run
/// background tracer/sweeper duties (if concurrent-role), park
/// otherwise. "Low priority" for the tracer duties is approximated by
/// short quanta with yielding parks between them (real thread
/// priorities are not portably available); the paper's accounting
/// (§3.2) only relies on the *measured* background rate `B`.
fn worker_loop(gc: &Arc<Gc>, idx: usize) {
    if gc.config.pin_workers {
        pin_to_cpu(idx);
    }
    let sched = gc.sched();
    let session_role = idx < sched.session_workers;
    let concurrent_role = idx < sched.concurrent_workers;
    gc.register_thread();
    if concurrent_role {
        gc.bg_alive.fetch_add(1, Ordering::Relaxed);
    }
    let mut tracer_alive = concurrent_role;
    let mut sweep_pacer = BgSweepPacer::new();
    let mut last_seq = 0u64;
    loop {
        if gc.shutdown_flag.load(Ordering::Relaxed) || sched.shared.state.lock().shutdown {
            break;
        }
        if tracer_alive && gc.in_concurrent_phase() {
            gc.poll_safepoint();
            // Fault: the tracer dies mid-phase — it abandons its tracing
            // duties abruptly (the thread itself persists for session
            // work, as a real runtime's GC thread would drop only its
            // concurrent duty). Any packets it ever held are already
            // back in the pool; the collector must finish the cycle
            // without its help.
            if mcgc_fault::point!("bg.death") {
                tracer_alive = false;
                gc.bg_alive.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            // Fault: the tracer stalls for the payload's duration while
            // *holding a checked-out packet* — the scenario the pause
            // watchdog exists for.
            if mcgc_fault::point!("bg.stall") {
                stall_holding_packet(gc);
                continue;
            }
            let quantum = gc.config.background_quantum as u64;
            let done = gc.trace_increment(quantum, TraceRole::Background, None);
            if done == 0 {
                // No concurrent work right now: yield (the paper's
                // background threads yield and retry).
                idle(
                    gc,
                    idx,
                    session_role,
                    true,
                    &mut last_seq,
                    Some(Duration::from_micros(200)),
                );
            } else {
                // Brief yield between quanta keeps "low priority".
                std::thread::yield_now();
            }
            continue;
        }
        if tracer_alive && gc.background_sweep_quantum(&mut sweep_pacer) {
            // Between concurrent phases the tracer doubles as the
            // background sweeper: it soaks idle cycles draining the
            // sweep epoch, parking while mutator refills keep up.
            gc.poll_safepoint();
            std::thread::yield_now();
            continue;
        }
        // Nothing to do: park until a session opens, a concurrent phase
        // kicks off, or shutdown. Tracer-role workers use a timed park
        // as a safety net; pure session workers sleep indefinitely (the
        // session open is their only wakeup).
        let d = if tracer_alive {
            Some(Duration::from_micros(500))
        } else {
            None
        };
        idle(gc, idx, session_role, tracer_alive, &mut last_seq, d);
    }
    if tracer_alive {
        gc.bg_alive.fetch_sub(1, Ordering::Relaxed);
    }
    gc.deregister_thread();
}

/// Parks while counted *safe* (so pauses proceed without this thread)
/// and serves any session that opens before leaving the safe window.
/// Serving inside the window is load-bearing, not just a fast path:
/// `exit_safe` blocks while the world is stopped, so a worker that left
/// the window first could never reach the session's buckets.
fn idle(
    gc: &Gc,
    idx: usize,
    session_role: bool,
    tracer_alive: bool,
    last_seq: &mut u64,
    d: Option<Duration>,
) {
    let sched = gc.sched();
    gc.enter_safe();
    loop {
        // Only a live tracer wants the concurrent-phase wakeup; for a
        // pure session worker the phase flag must not end the park, or
        // every concurrent phase would spin it.
        sched.park(d, || tracer_alive && gc.in_concurrent_phase());
        if sched.shared.state.lock().shutdown {
            break;
        }
        if session_role && (sched.session_open() || sched.shared.state.lock().job.is_some()) {
            sched.serve(idx, last_seq);
        }
        // While the world is stopped, stay inside the safe window: a
        // session can close and another open (the straggler fence, then
        // the pause proper), and `exit_safe` below would block anyway.
        if gc.stop_requested.load(Ordering::Relaxed) {
            continue;
        }
        break;
    }
    gc.exit_safe();
}

impl Gc {
    /// Parks a tracer-role worker for up to `d` between polls; used by
    /// the `sweep.bg_stall` fault path. Kickoff's [`Scheduler::
    /// kickoff_wake`] cuts the sleep short the moment a concurrent
    /// phase begins.
    pub(crate) fn background_park(&self, d: Duration) {
        self.sched().park(Some(d), || self.in_concurrent_phase());
    }
}

/// Backs the `bg.stall` fault site: checks a non-empty packet out of
/// the pool and sleeps on it (counted *safe*, so pauses proceed) for
/// the plan's payload in milliseconds (default 1000, clamped to a
/// minute). A healthy thread never parks holding a packet; the pause
/// watchdog must condemn the handle so termination detection still
/// fires.
fn stall_holding_packet(gc: &Arc<Gc>) {
    // Prefer a work-laden input packet (the worst case: greys go missing
    // with it), but any checked-out packet wedges §4.3 termination
    // detection, so fall back to an output-side grab.
    let Some(held) = gc.pool.get_input().or_else(|| gc.pool.get_output()) else {
        // Nothing to hold hostage yet; retry at the next loop turn (the
        // site keeps firing under a `From` trigger).
        std::thread::yield_now();
        return;
    };
    let ms = match mcgc_fault::payload("bg.stall") {
        0 => 1000,
        ms => ms.clamp(1, 60_000),
    };
    let deadline = std::time::Instant::now() + Duration::from_millis(ms);
    while !gc.shutdown_flag.load(Ordering::Relaxed) && std::time::Instant::now() < deadline {
        gc.enter_safe();
        gc.background_park(Duration::from_millis(2));
        gc.exit_safe();
    }
    drop(held);
}

/// Pins the calling thread to CPU `idx % available_parallelism`
/// (round-robin; mmtk's `scheduler/affinity.rs` pattern). Linux only —
/// a no-op elsewhere — and only reached behind the `pin_workers`
/// config knob.
#[cfg(target_os = "linux")]
fn pin_to_cpu(idx: usize) {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu = idx % cpus;
    // A fixed 1024-bit cpu_set_t, the kernel ABI's default width.
    let mut mask = [0u64; 16];
    if cpu / 64 < mask.len() {
        mask[cpu / 64] = 1u64 << (cpu % 64);
    }
    extern "C" {
        // Hand-declared: the workspace is hermetic (no libc crate), and
        // std already links the symbol.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: `mask` outlives the call and `cpusetsize` is its exact
    // byte length; pid 0 targets the calling thread. Affinity is
    // advisory — failure (e.g. in a restricted sandbox) is ignored.
    unsafe {
        sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_cpu(_idx: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GcConfig;
    use std::sync::atomic::AtomicUsize;

    fn sched_gc(stw_workers: usize) -> Arc<Gc> {
        let mut cfg = GcConfig::stw_with_heap_bytes(1 << 20);
        cfg.stw_workers = stw_workers;
        cfg.background_threads = 0;
        Gc::new(cfg)
    }

    #[test]
    fn single_worker_runs_inline() {
        let gc = sched_gc(1);
        let hits = AtomicUsize::new(0);
        {
            let session = gc.sched().open_session();
            session.run(Bucket::Drain, |w| {
                assert_eq!(w, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(gc.sched().bucket_runs(Bucket::Drain), 1);
        assert_eq!(gc.sched().wakeups_total(), 0, "no workers, no wakeups");
        gc.shutdown();
    }

    #[test]
    fn all_workers_run_each_bucket() {
        let gc = sched_gc(4);
        for round in 1..=3u64 {
            let ran = AtomicU64::new(0);
            {
                let session = gc.sched().open_session();
                session.run(Bucket::Sweep, |w| {
                    assert!(w < 4);
                    ran.fetch_add(1 << (8 * w), Ordering::Relaxed);
                    // Rendezvous: the bucket closes the moment the
                    // leader's slice returns (leader independence), so
                    // hold every slice open until all four have arrived.
                    while ran.load(Ordering::Relaxed) != 0x01_01_01_01 {
                        std::thread::yield_now();
                    }
                });
            }
            // Each worker ran exactly once: one count in each byte lane.
            assert_eq!(ran.load(Ordering::Relaxed), 0x01_01_01_01);
            assert_eq!(gc.sched().bucket_runs(Bucket::Sweep), round);
        }
        gc.shutdown();
    }

    #[test]
    fn one_wakeup_covers_every_bucket_in_a_session() {
        let gc = sched_gc(3);
        {
            let session = gc.sched().open_session();
            for bucket in [Bucket::Cards, Bucket::Roots, Bucket::Drain, Bucket::Sweep] {
                let ran = AtomicU64::new(0);
                session.run(bucket, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    // Hold the bucket open until all three workers claim
                    // it (see all_workers_run_each_bucket).
                    while ran.load(Ordering::Relaxed) < 3 {
                        std::thread::yield_now();
                    }
                });
                assert_eq!(ran.load(Ordering::Relaxed), 3);
            }
        }
        // One session, two session workers: exactly two per-worker
        // wakeups despite four buckets (zero per-phase wakeups).
        assert_eq!(gc.sched().sessions_total(), 1);
        assert_eq!(gc.sched().wakeups_total(), 2);
        gc.shutdown();
    }

    #[test]
    fn cursor_work_is_fully_claimed() {
        let gc = sched_gc(3);
        const N: usize = 10_000;
        let cursor = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        {
            let session = gc.sched().open_session();
            session.run(Bucket::Cards, |w| {
                let mut claims = 0;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= N {
                        break;
                    }
                    claims += 1;
                    sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
                }
                gc.sched().add_claimed(w, claims);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), (N as u64 * (N as u64 + 1)) / 2);
        assert_eq!(
            gc.sched().claimed_per_worker().iter().sum::<u64>(),
            N as u64
        );
        assert_eq!(gc.sched().bucket_items(Bucket::Cards), N as u64);
        gc.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let gc = sched_gc(2);
        {
            let session = gc.sched().open_session();
            session.run(Bucket::Roots, |_| {});
        }
        gc.shutdown();
        gc.shutdown();
    }

    #[test]
    fn leader_panic_drains_bucket_and_pool_survives() {
        let gc = sched_gc(3);
        let helpers_ran = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let session = gc.sched().open_session();
            session.run(Bucket::Cards, |w| {
                if w == 0 {
                    // Panic only after both helpers are inside the
                    // bucket, so the unwind drain has slices to wait out.
                    while helpers_ran.load(Ordering::Relaxed) < 2 {
                        std::thread::yield_now();
                    }
                    panic!("leader slice panics");
                }
                helpers_ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(caught.is_err(), "leader panic propagates");
        assert_eq!(helpers_ran.load(Ordering::Relaxed), 2);
        // The unwind path drained the bucket (and the session guard
        // closed the session), so the pool is still serviceable.
        let ran = AtomicU64::new(0);
        {
            let session = gc.sched().open_session();
            session.run(Bucket::Cards, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
                while ran.load(Ordering::Relaxed) < 3 {
                    std::thread::yield_now();
                }
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        gc.shutdown();
    }

    #[test]
    fn session_after_shutdown_runs_inline() {
        let gc = sched_gc(4);
        gc.shutdown();
        let ran = AtomicU64::new(0);
        {
            let session = gc.sched().open_session();
            session.run(Bucket::Drain, |w| {
                assert_eq!(w, 0, "only the caller runs after shutdown");
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_racing_sessions_never_hangs() {
        for _ in 0..50 {
            let gc = sched_gc(3);
            let g = Arc::clone(&gc);
            let t = std::thread::spawn(move || g.shutdown());
            for _ in 0..10 {
                let ran = AtomicU64::new(0);
                {
                    let session = gc.sched().open_session();
                    session.run(Bucket::Roots, |_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                // Inline (post-shutdown) or full-pool, the bucket ran.
                assert!(ran.load(Ordering::Relaxed) >= 1);
            }
            t.join().unwrap();
        }
    }
}
