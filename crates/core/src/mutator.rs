//! The mutator handle: every application thread's interface to the heap
//! and the collector.

use std::sync::Arc;

use mcgc_heap::{ObjectRef, ObjectShape};

use crate::collector::{Gc, GcError};
use crate::roots::MutatorShared;
use crate::stats::Trigger;

/// How many write-barrier executions between safepoint polls (allocation
/// polls on every slow path anyway; this bounds pause latency for
/// mutation-heavy, allocation-free stretches).
const WRITE_POLL_PERIOD: u32 = 64;

/// A registered mutator thread's handle.
///
/// Allocation ([`Mutator::alloc`]) is the collector's pacing point: cache
/// refills trigger kickoff checks, incremental tracing duties (§3), and —
/// on allocation failure — the stop-the-world phase. Reference stores go
/// through the card-marking write barrier ([`Mutator::write_ref`], §2).
/// Roots live on an explicit shadow stack ([`Mutator::root_push`] et
/// al.), the substrate's stand-in for the JVM's conservatively-scanned
/// thread stacks.
///
/// Dropping the handle deregisters the thread.
pub struct Mutator {
    gc: Arc<Gc>,
    shared: Arc<MutatorShared>,
    writes_since_poll: u32,
}

impl Mutator {
    pub(crate) fn new(gc: Arc<Gc>, shared: Arc<MutatorShared>) -> Mutator {
        Mutator {
            gc,
            shared,
            writes_since_poll: 0,
        }
    }

    /// The collector this mutator is registered with.
    pub fn gc(&self) -> &Arc<Gc> {
        &self.gc
    }

    /// This mutator's id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    /// Allocates an object.
    ///
    /// Small objects bump-allocate from the thread's allocation cache;
    /// refills perform the incremental tracing duty (§3.1). Large objects
    /// allocate directly from the free list with an individual
    /// publication fence (§5.2).
    ///
    /// # Errors
    /// [`GcError::OutOfMemory`] if the request cannot be satisfied even
    /// after a full collection.
    pub fn alloc(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.gc.poll_safepoint();
        let heap = &self.gc.heap;
        if heap.is_large(shape) {
            return self.alloc_large(shape);
        }
        if let Some(obj) = heap.alloc_small(&mut self.shared.cache.lock(), shape) {
            return Ok(obj);
        }
        self.alloc_small_slow(shape)
    }

    /// Allocates an object and stores a reference to it into `holder`'s
    /// slot through the write barrier. Convenience for the common
    /// allocate-and-link pattern.
    ///
    /// # Errors
    /// Propagates [`GcError::OutOfMemory`] from [`Mutator::alloc`].
    pub fn alloc_into(
        &mut self,
        holder: ObjectRef,
        slot: u32,
        shape: ObjectShape,
    ) -> Result<ObjectRef, GcError> {
        let obj = self.alloc(shape)?;
        self.write_ref(holder, slot, Some(obj));
        Ok(obj)
    }

    #[cold]
    fn alloc_small_slow(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.gc.tel.on_alloc_slow(false);
        let refill_bytes = self.gc.config.heap.cache_bytes as u64;
        let mut collections = 0;
        loop {
            // Kickoff check (§3.1), then this allocation's tracing duty.
            self.gc.maybe_kickoff();
            self.gc.mutator_increment(&self.shared, refill_bytes);
            {
                let mut cache = self.shared.cache.lock();
                if self.gc.heap.refill_cache(&mut cache, shape.granules()) {
                    if let Some(obj) = self.gc.heap.alloc_small(&mut cache, shape) {
                        return Ok(obj);
                    }
                }
            }
            // Lazy-sweep progress may recover memory without a pause.
            if self.gc.sweep_some_lazy() {
                continue;
            }
            if collections >= 3 {
                // Full collections ran and the request still fails:
                // genuinely out of memory.
                return Err(GcError::OutOfMemory);
            }
            self.gc
                .collect_for_alloc(Trigger::AllocationFailure, shape.bytes());
            collections += 1;
        }
    }

    #[cold]
    fn alloc_large(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.gc.tel.on_alloc_slow(true);
        let bytes = shape.bytes() as u64;
        let mut collections = 0;
        loop {
            self.gc.maybe_kickoff();
            self.gc.mutator_increment(&self.shared, bytes);
            if let Ok(obj) = self.gc.heap.alloc_large(shape) {
                return Ok(obj);
            }
            if self.gc.sweep_some_lazy() {
                continue;
            }
            if collections >= 3 {
                return Err(GcError::OutOfMemory);
            }
            self.gc
                .collect_for_alloc(Trigger::AllocationFailure, shape.bytes());
            collections += 1;
        }
    }

    // ------------------------------------------------------------------
    // heap access
    // ------------------------------------------------------------------

    /// Stores `value` into reference slot `slot` of `obj` through the
    /// card-marking write barrier.
    ///
    /// The barrier follows the paper's order (§2.2 footnote 3): the new
    /// reference is already a root (the caller holds it), the referencing
    /// cell is modified, and finally the card is dirtied — with **no
    /// fence** (§5.3; the collector's snapshot handshake compensates).
    #[inline]
    pub fn write_ref(&mut self, obj: ObjectRef, slot: u32, value: Option<ObjectRef>) {
        self.gc.heap.store_ref_unbarriered(obj, slot, value);
        self.gc.heap.cards().dirty(obj.card());
        self.writes_since_poll += 1;
        if self.writes_since_poll >= WRITE_POLL_PERIOD {
            self.writes_since_poll = 0;
            self.gc.poll_safepoint();
        }
    }

    /// Loads reference slot `slot` of `obj`.
    #[inline]
    pub fn read_ref(&self, obj: ObjectRef, slot: u32) -> Option<ObjectRef> {
        self.gc.heap.load_ref(obj, slot)
    }

    /// Stores a data (non-reference) granule; no barrier needed.
    #[inline]
    pub fn write_data(&self, obj: ObjectRef, idx: u32, value: u64) {
        self.gc.heap.store_data(obj, idx, value);
    }

    /// Loads a data granule.
    #[inline]
    pub fn read_data(&self, obj: ObjectRef, idx: u32) -> u64 {
        self.gc.heap.load_data(obj, idx)
    }

    // ------------------------------------------------------------------
    // shadow stack (roots)
    // ------------------------------------------------------------------

    /// Pushes a root slot; returns its index.
    pub fn root_push(&self, value: Option<ObjectRef>) -> usize {
        let mut roots = self.shared.roots.lock();
        roots.push(ObjectRef::encode(value));
        roots.len() - 1
    }

    /// Overwrites root slot `idx`.
    pub fn root_set(&self, idx: usize, value: Option<ObjectRef>) {
        self.shared.roots.lock()[idx] = ObjectRef::encode(value);
    }

    /// Reads root slot `idx`.
    pub fn root_get(&self, idx: usize) -> Option<ObjectRef> {
        ObjectRef::decode(self.shared.roots.lock()[idx])
    }

    /// Truncates the shadow stack to `len` slots (popping frames).
    pub fn root_truncate(&self, len: usize) {
        self.shared.roots.lock().truncate(len);
    }

    /// Number of root slots.
    pub fn root_len(&self) -> usize {
        self.shared.roots.lock().len()
    }

    // ------------------------------------------------------------------
    // scheduling
    // ------------------------------------------------------------------

    /// Explicit safepoint poll (for long allocation-free stretches).
    #[inline]
    pub fn safepoint(&self) {
        self.gc.poll_safepoint();
    }

    /// Runs `f` in a *blocked region*: the thread counts as stopped for
    /// the collector (like a JVM thread in native code), so GC proceeds
    /// during think times and I/O waits. `f` must not touch the heap.
    pub fn blocked<R>(&self, f: impl FnOnce() -> R) -> R {
        self.gc.enter_safe();
        let r = f();
        self.gc.exit_safe();
        r
    }

    /// Sleeps cooperatively: the collector may run during the sleep
    /// (workload think time, paper §6 pBOB).
    pub fn think(&self, d: std::time::Duration) {
        self.blocked(|| std::thread::sleep(d));
    }

    /// Requests a full collection and waits for it to complete.
    pub fn collect(&mut self) {
        self.gc.collect_inner(Trigger::Explicit);
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        self.gc.deregister_mutator(&self.shared);
    }
}

impl std::fmt::Debug for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutator")
            .field("id", &self.shared.id)
            .finish()
    }
}
