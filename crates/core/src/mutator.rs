//! The mutator handle: every application thread's interface to the heap
//! and the collector.

use std::sync::Arc;

use mcgc_heap::{ObjectRef, ObjectShape};

use crate::collector::{Gc, GcError};
use crate::roots::MutatorShared;
use crate::stats::Trigger;
use crate::telemetry::EscalationRung;

/// How many write-barrier executions between safepoint polls (allocation
/// polls on every slow path anyway; this bounds pause latency for
/// mutation-heavy, allocation-free stretches).
const WRITE_POLL_PERIOD: u32 = 64;

/// A registered mutator thread's handle.
///
/// Allocation ([`Mutator::alloc`]) is the collector's pacing point: cache
/// refills trigger kickoff checks, incremental tracing duties (§3), and —
/// on allocation failure — the stop-the-world phase. Reference stores go
/// through the card-marking write barrier ([`Mutator::write_ref`], §2).
/// Roots live on an explicit shadow stack ([`Mutator::root_push`] et
/// al.), the substrate's stand-in for the JVM's conservatively-scanned
/// thread stacks.
///
/// Dropping the handle deregisters the thread.
pub struct Mutator {
    gc: Arc<Gc>,
    shared: Arc<MutatorShared>,
    writes_since_poll: u32,
}

impl Mutator {
    pub(crate) fn new(gc: Arc<Gc>, shared: Arc<MutatorShared>) -> Mutator {
        Mutator {
            gc,
            shared,
            writes_since_poll: 0,
        }
    }

    /// The collector this mutator is registered with.
    pub fn gc(&self) -> &Arc<Gc> {
        &self.gc
    }

    /// This mutator's id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Safepoint poll plus §5.3 handshake ack — every mutator polling
    /// point goes through here, so a timed-out handshake completes at
    /// this thread's next poll.
    #[inline]
    fn poll(&self) {
        self.gc.poll_safepoint();
        self.gc.poll_handshake(&self.shared);
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    /// Allocates an object.
    ///
    /// Small objects bump-allocate from the thread's allocation cache;
    /// refills perform the incremental tracing duty (§3.1). Large objects
    /// allocate directly from the free list with an individual
    /// publication fence (§5.2).
    ///
    /// # Errors
    /// [`GcError::OutOfMemory`] if the request cannot be satisfied even
    /// after a full collection.
    pub fn alloc(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.poll();
        let heap = &self.gc.heap;
        if heap.is_large(shape) {
            return self.alloc_large(shape);
        }
        if let Some(obj) = heap.alloc_small(&mut self.shared.cache.lock(), shape) {
            return Ok(obj);
        }
        self.alloc_small_slow(shape)
    }

    /// Allocates an object and stores a reference to it into `holder`'s
    /// slot through the write barrier. Convenience for the common
    /// allocate-and-link pattern.
    ///
    /// # Errors
    /// Propagates [`GcError::OutOfMemory`] from [`Mutator::alloc`].
    pub fn alloc_into(
        &mut self,
        holder: ObjectRef,
        slot: u32,
        shape: ObjectShape,
    ) -> Result<ObjectRef, GcError> {
        let obj = self.alloc(shape)?;
        self.write_ref(holder, slot, Some(obj));
        Ok(obj)
    }

    #[cold]
    fn alloc_small_slow(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.gc.tel.on_alloc_slow(false);
        let refill_bytes = self.gc.config.heap.cache_bytes as u64;
        let mut ladder = Escalation::new();
        loop {
            ladder.iteration(&self.gc, shape.bytes() as u64)?;
            // Kickoff check (§3.1), then this allocation's tracing duty.
            self.gc.maybe_kickoff();
            self.gc.mutator_increment(&self.shared, refill_bytes);
            {
                let mut cache = self.shared.cache.lock();
                if self.gc.heap.refill_cache(&mut cache, shape.granules()) {
                    if let Some(obj) = self.gc.heap.alloc_small(&mut cache, shape) {
                        return Ok(obj);
                    }
                }
            }
            // Rung 1: lazy-sweep progress may recover memory without a
            // pause (bounded per collection attempt — a sweep that keeps
            // "progressing" without freeing a usable run must escalate).
            if ladder.try_lazy(&self.gc) {
                continue;
            }
            // Rungs 2-5: finish the concurrent phase, then full
            // stop-the-world collections, then heap growth, then one
            // bounded backpressure stall; give up (typed OOM) after all
            // of those prove futile.
            ladder.collect_rung(&self.gc, &self.shared, shape.bytes())?;
        }
    }

    #[cold]
    fn alloc_large(&mut self, shape: ObjectShape) -> Result<ObjectRef, GcError> {
        self.gc.tel.on_alloc_slow(true);
        let bytes = shape.bytes() as u64;
        let mut ladder = Escalation::new();
        loop {
            ladder.iteration(&self.gc, bytes)?;
            self.gc.maybe_kickoff();
            self.gc.mutator_increment(&self.shared, bytes);
            match self.gc.heap.alloc_large(shape) {
                Ok(obj) => return Ok(obj),
                Err(e) => ladder.last_error = Some(e),
            }
            if ladder.try_lazy(&self.gc) {
                continue;
            }
            ladder.collect_rung(&self.gc, &self.shared, shape.bytes())?;
        }
    }

    // ------------------------------------------------------------------
    // heap access
    // ------------------------------------------------------------------

    /// Stores `value` into reference slot `slot` of `obj` through the
    /// card-marking write barrier.
    ///
    /// The barrier follows the paper's order (§2.2 footnote 3): the new
    /// reference is already a root (the caller holds it), the referencing
    /// cell is modified, and finally the card is dirtied — with **no
    /// fence** (§5.3; the collector's snapshot handshake compensates).
    #[inline]
    pub fn write_ref(&mut self, obj: ObjectRef, slot: u32, value: Option<ObjectRef>) {
        self.gc.heap.store_ref_unbarriered(obj, slot, value);
        self.gc.heap.cards().dirty(obj.card());
        self.writes_since_poll += 1;
        if self.writes_since_poll >= WRITE_POLL_PERIOD {
            self.writes_since_poll = 0;
            self.poll();
        }
    }

    /// Loads reference slot `slot` of `obj`.
    #[inline]
    pub fn read_ref(&self, obj: ObjectRef, slot: u32) -> Option<ObjectRef> {
        self.gc.heap.load_ref(obj, slot)
    }

    /// Stores a data (non-reference) granule; no barrier needed.
    #[inline]
    pub fn write_data(&self, obj: ObjectRef, idx: u32, value: u64) {
        self.gc.heap.store_data(obj, idx, value);
    }

    /// Loads a data granule.
    #[inline]
    pub fn read_data(&self, obj: ObjectRef, idx: u32) -> u64 {
        self.gc.heap.load_data(obj, idx)
    }

    // ------------------------------------------------------------------
    // shadow stack (roots)
    // ------------------------------------------------------------------

    /// Pushes a root slot; returns its index.
    pub fn root_push(&self, value: Option<ObjectRef>) -> usize {
        let mut roots = self.shared.roots.lock();
        roots.push(ObjectRef::encode(value));
        roots.len() - 1
    }

    /// Overwrites root slot `idx`.
    pub fn root_set(&self, idx: usize, value: Option<ObjectRef>) {
        self.shared.roots.lock()[idx] = ObjectRef::encode(value);
    }

    /// Reads root slot `idx`.
    pub fn root_get(&self, idx: usize) -> Option<ObjectRef> {
        ObjectRef::decode(self.shared.roots.lock()[idx])
    }

    /// Truncates the shadow stack to `len` slots (popping frames).
    pub fn root_truncate(&self, len: usize) {
        self.shared.roots.lock().truncate(len);
    }

    /// Number of root slots.
    pub fn root_len(&self) -> usize {
        self.shared.roots.lock().len()
    }

    // ------------------------------------------------------------------
    // scheduling
    // ------------------------------------------------------------------

    /// Explicit safepoint poll (for long allocation-free stretches).
    #[inline]
    pub fn safepoint(&self) {
        self.poll();
    }

    /// Runs `f` in a *blocked region*: the thread counts as stopped for
    /// the collector (like a JVM thread in native code), so GC proceeds
    /// during think times and I/O waits. `f` must not touch the heap.
    pub fn blocked<R>(&self, f: impl FnOnce() -> R) -> R {
        // The parked flag publishes every heap write made before parking,
        // so the card handshake may treat this mutator as pre-acked
        // instead of burning its timeout waiting for a poll that cannot
        // come.
        self.shared.park_safe();
        self.gc.enter_safe();
        let r = f();
        self.gc.exit_safe();
        // Ack any handshake that happened during the blocked region
        // *before* dropping the parked flag, so there is no window where
        // the collector sees neither the flag nor the ack.
        self.gc.poll_handshake(&self.shared);
        self.shared.unpark_safe();
        r
    }

    /// Sleeps cooperatively: the collector may run during the sleep
    /// (workload think time, paper §6 pBOB).
    pub fn think(&self, d: std::time::Duration) {
        self.blocked(|| std::thread::sleep(d));
    }

    /// Requests a full collection and waits for it to complete.
    pub fn collect(&mut self) {
        self.gc.collect_inner(Trigger::Explicit);
    }
}

/// Per-request state of the allocation-failure escalation ladder
/// (lazy-sweep progress → finish concurrent phase → full stop-the-world
/// → heap growth → one bounded backpressure stall → OOM), with per-rung
/// telemetry and two livelock guards: a per-collection cap on lazy-sweep
/// retries and a hard cap on total slow-path iterations.
struct Escalation {
    iterations: u32,
    lazy_rungs: u32,
    collections: u32,
    /// Segments committed by the grow rung for this request.
    grows: u32,
    /// Whether the bounded backpressure stall has already run; it never
    /// repeats for the same request, keeping slow-path time bounded.
    stalled: bool,
    /// Most recent heap-level failure (large allocations), preserved so
    /// the final OOM carries the allocator's own context.
    last_error: Option<mcgc_heap::AllocError>,
}

impl Escalation {
    fn new() -> Escalation {
        Escalation {
            iterations: 0,
            lazy_rungs: 0,
            collections: 0,
            grows: 0,
            stalled: false,
            last_error: None,
        }
    }

    /// Accounts one slow-path iteration; errors out past the hard cap
    /// (the last-resort livelock guard).
    fn iteration(&mut self, gc: &Gc, requested_bytes: u64) -> Result<(), GcError> {
        self.iterations += 1;
        if self.iterations > 1 {
            gc.tel.on_alloc_retry();
        }
        if self.iterations > gc.config.alloc_iteration_cap {
            gc.tel.on_alloc_oom();
            return Err(self.final_error(gc, requested_bytes));
        }
        Ok(())
    }

    /// Rung 1: sweeps a few lazy chunks if the per-collection retry
    /// budget allows; returns true when progress was made (caller
    /// retries allocation).
    fn try_lazy(&mut self, gc: &Gc) -> bool {
        if self.lazy_rungs >= gc.config.alloc_lazy_retry_cap {
            return false;
        }
        if !gc.sweep_some_lazy() {
            return false;
        }
        self.lazy_rungs += 1;
        gc.tel.on_alloc_rung(EscalationRung::LazySweep);
        true
    }

    /// Rungs 2-5: finishes the concurrent phase (if one is running) or
    /// runs a full stop-the-world collection; once the configured number
    /// of full collections has proven futile, tries to grow the heap by
    /// one segment (rung 4), then runs the one bounded backpressure
    /// stall (rung 5), and only then errors out with a typed OOM.
    fn collect_rung(
        &mut self,
        gc: &Gc,
        shared: &Arc<MutatorShared>,
        requested_bytes: usize,
    ) -> Result<(), GcError> {
        if self.collections >= gc.config.alloc_full_collections {
            // Rung 4: grow the heap by one segment. Fallible — the hard
            // limit ([`HeapConfig::max_heap_bytes`]) or an injected
            // `heap.segment_reserve` fault may refuse; then the request
            // proceeds down the ladder instead of looping on growth.
            if gc.heap.try_grow() {
                gc.tel.on_alloc_rung(EscalationRung::Grow);
                self.grows += 1;
                // Fresh space may unblock the cheap rungs again.
                self.lazy_rungs = 0;
                return Ok(());
            }
            // Rung 5: wait — boundedly, and helping while waiting — for
            // memory other threads are in the middle of freeing.
            if self.stall_rung(gc, shared, requested_bytes) {
                return Ok(());
            }
            gc.tel.on_alloc_oom();
            return Err(self.final_error(gc, requested_bytes as u64));
        }
        let rung = if gc.in_concurrent_phase() {
            EscalationRung::FinishConcurrent
        } else {
            EscalationRung::FullStw
        };
        gc.tel.on_alloc_rung(rung);
        gc.collect_for_alloc(Trigger::AllocationFailure, requested_bytes);
        self.collections += 1;
        // A collection may have unblocked the lazy rung again.
        self.lazy_rungs = 0;
        Ok(())
    }

    /// Rung 5: one bounded backpressure stall. The mutator waits up to
    /// [`GcConfig::alloc_stall_deadline`] for a free run large enough,
    /// helping the collector while it waits (lazy-sweep chunks, tracing
    /// increments like the §3 mutator duties, safepoint polls — a pause
    /// may be the very thing about to free memory). Returns `true` when
    /// memory appeared (caller retries the allocation), `false` when the
    /// deadline expired or the stall already ran for this request —
    /// never waits unboundedly.
    ///
    /// [`GcConfig::alloc_stall_deadline`]: crate::GcConfig::alloc_stall_deadline
    fn stall_rung(&mut self, gc: &Gc, shared: &Arc<MutatorShared>, requested_bytes: usize) -> bool {
        if self.stalled {
            return false;
        }
        self.stalled = true;
        let deadline = gc.config.alloc_stall_deadline;
        let start = std::time::Instant::now();
        let help_bytes = gc.config.heap.cache_bytes as u64;
        let satisfied = loop {
            if gc.heap.largest_free_bytes() >= requested_bytes {
                break true;
            }
            if start.elapsed() >= deadline {
                break false;
            }
            gc.poll_safepoint();
            let swept = gc.sweep_some_lazy();
            if gc.in_concurrent_phase() {
                gc.mutator_increment(shared, help_bytes);
            } else if !swept {
                // Nothing to help with: yield briefly instead of
                // spinning on the free list.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        };
        gc.tel.on_alloc_stall(start.elapsed().as_nanos() as u64);
        satisfied
    }

    fn final_error(&self, gc: &Gc, requested_bytes: u64) -> GcError {
        let base = match self.last_error {
            Some(e) => GcError::from(e),
            None => gc.oom(requested_bytes),
        };
        // Graft this request's ladder history onto the heap snapshot.
        match base {
            GcError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
                ..
            } => GcError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
                ladder_iterations: self.iterations,
                lazy_sweeps: self.lazy_rungs,
                full_collections: self.collections,
                grows: self.grows,
                stalled: self.stalled,
            },
        }
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        self.gc.deregister_mutator(&self.shared);
    }
}

impl std::fmt::Debug for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutator")
            .field("id", &self.shared.id)
            .finish()
    }
}
