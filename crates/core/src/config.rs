//! Collector configuration and the deterministic pause cost model.

use mcgc_heap::HeapConfig;
use mcgc_packets::PoolConfig;

/// Which collector to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollectorMode {
    /// The paper's parallel, incremental, mostly concurrent collector
    /// (CGC).
    Concurrent,
    /// The baseline parallel stop-the-world mark-sweep collector (STW) —
    /// the mature collector the paper compares against.
    StopTheWorld,
}

/// When [`crate::Gc`] sweeps.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SweepMode {
    /// Parallel bitwise sweep inside the pause (the paper's collector).
    Eager,
    /// Lazy sweep (§7 future work, implemented as an extension): the
    /// pause ends after marking; mutators and background threads sweep
    /// chunks on demand.
    Lazy,
}

/// Full collector configuration. Defaults mirror the paper's measurement
/// setup (§6): tracing rate 8.0, 1000 packets of 493 entries, 4 background
/// threads, one concurrent card-cleaning pass.
#[derive(Clone, Debug)]
pub struct GcConfig {
    /// Heap geometry and allocation parameters.
    pub heap: HeapConfig,
    /// Work packet pool sizing.
    pub pool: PoolConfig,
    /// Collector selection (CGC vs STW baseline).
    pub mode: CollectorMode,
    /// Desired allocator tracing rate `K0` (§3.1; "typically 5 to 10").
    pub tracing_rate: f64,
    /// Cap on the effective tracing rate, as a multiple of `K0`
    /// (`Kmax`, "typically 2 K0").
    pub max_rate_factor: f64,
    /// Corrective term `C` applied when tracing falls behind schedule
    /// (§3.2: `K + (K - K0) * C`).
    pub corrective_factor: f64,
    /// Exponential smoothing weight for the `L`, `M`, and `Best`
    /// predictions (weight of the newest observation).
    pub smoothing_alpha: f64,
    /// Number of low-priority background tracing threads (§3).
    pub background_threads: usize,
    /// Worker threads (including the coordinator) for the parallel
    /// stop-the-world phase. The scheduler pool holds
    /// `max(stw_workers - 1, background_threads)` persistent workers
    /// spawned once at [`Gc::new`](crate::Gc::new); during a pause the
    /// first `stw_workers - 1` of them serve the session's work buckets
    /// (card cleaning, root rescanning, packet drain, sweep, bitmap
    /// clears) with no thread creation and at most one wakeup per worker
    /// on the pause path. `1` runs every bucket inline on the coordinator
    /// — exactly the serial behaviour.
    pub stw_workers: usize,
    /// Pin scheduler pool workers to CPUs round-robin (Linux only; a
    /// no-op elsewhere). Off by default: pinning helps steady-state pause
    /// scaling on dedicated cores but hurts when the pool shares CPUs
    /// with the application.
    pub pin_workers: bool,
    /// Concurrent card-cleaning passes (§2.1; 1 in the paper, 2 as the
    /// footnote-2 ablation).
    pub card_clean_passes: usize,
    /// Eager (paper) or lazy (§7 extension) sweep.
    pub sweep: SweepMode,
    /// Sweep chunk size in granules.
    pub sweep_chunk_granules: usize,
    /// Whether background threads drain the sweep epoch while idle
    /// (lazy sweep only). Off, only mutator refills and the next cycle's
    /// straggler fence sweep — the A/B arm the pause bench calls `lazy`
    /// (vs `lazy+bg`).
    pub bg_sweep: bool,
    /// Chunks the background sweeper drains per quantum between
    /// safepoint polls.
    pub bg_sweep_batch: usize,
    /// Batch size (cards) for a concurrent card-cleaning quantum; each
    /// snapshot batch costs one handshake.
    pub card_clean_batch: usize,
    /// Tracer-side §5.2 batch: objects whose allocation bits are tested
    /// before one fence.
    pub trace_batch: usize,
    /// Bytes a background thread traces per quantum between safepoint
    /// polls.
    pub background_quantum: usize,
    /// The pause cost model.
    pub cost: CostModel,
    /// Initial guess for `L` (bytes to trace concurrently) as a fraction
    /// of the heap, before any cycle history exists.
    pub initial_live_fraction: f64,
    /// Initial guess for `M` (bytes on dirty cards) as a fraction of the
    /// heap.
    pub initial_dirty_fraction: f64,
    /// Escalation ladder rung 1: lazy-sweep retries allowed per
    /// collection attempt before escalating to a pause (livelock guard —
    /// each retry sweeps a few chunks, so progress is bounded work).
    pub alloc_lazy_retry_cap: u32,
    /// Escalation ladder rungs 2-3: full collections attempted before
    /// declaring [`crate::GcError::OutOfMemory`].
    pub alloc_full_collections: u32,
    /// Hard cap on total slow-path iterations per allocation request —
    /// the last-resort livelock guard should every rung keep reporting
    /// (bogus) progress.
    pub alloc_iteration_cap: u32,
    /// How long the collector waits for every mutator to ack a §5.3 card
    /// handshake before falling back to a global fence.
    pub handshake_timeout: std::time::Duration,
    /// Soft memory-pressure limit in bytes of *used* (committed minus
    /// free) heap. Crossing it makes the next allocation slow path kick
    /// off an emergency collection cycle, bypassing the pacer's own
    /// threshold. `0` disables the soft limit. (The hard limit is
    /// [`HeapConfig::max_heap_bytes`]: the grow rung stops there.)
    pub soft_limit_bytes: usize,
    /// Deadline for one bounded allocation-backpressure stall: after the
    /// escalation ladder exhausts collections and growth, the mutator
    /// waits at most this long — helping trace and sweep while it waits —
    /// for memory freed by others before surfacing a typed OOM. The
    /// stall never repeats for the same allocation request, so total
    /// slow-path time stays bounded.
    pub alloc_stall_deadline: std::time::Duration,
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            heap: HeapConfig::default(),
            pool: PoolConfig::default(),
            mode: CollectorMode::Concurrent,
            tracing_rate: 8.0,
            max_rate_factor: 2.0,
            corrective_factor: 0.5,
            smoothing_alpha: 0.4,
            background_threads: 4,
            stw_workers: 4,
            pin_workers: false,
            card_clean_passes: 1,
            sweep: SweepMode::Eager,
            sweep_chunk_granules: 16 << 10, // 128 KiB chunks
            bg_sweep: true,
            bg_sweep_batch: 8,
            card_clean_batch: 2048,
            trace_batch: 64,
            background_quantum: 64 << 10,
            cost: CostModel::default(),
            initial_live_fraction: 0.35,
            initial_dirty_fraction: 0.02,
            alloc_lazy_retry_cap: 16,
            alloc_full_collections: 3,
            alloc_iteration_cap: 96,
            handshake_timeout: std::time::Duration::from_micros(500),
            soft_limit_bytes: 0,
            alloc_stall_deadline: std::time::Duration::from_millis(50),
        }
    }
}

impl GcConfig {
    /// A config with the given heap size, otherwise defaults.
    pub fn with_heap_bytes(bytes: usize) -> GcConfig {
        GcConfig {
            heap: HeapConfig::with_heap_bytes(bytes),
            ..GcConfig::default()
        }
    }

    /// The stop-the-world baseline with the given heap size.
    pub fn stw_with_heap_bytes(bytes: usize) -> GcConfig {
        GcConfig {
            heap: HeapConfig::with_heap_bytes(bytes),
            mode: CollectorMode::StopTheWorld,
            ..GcConfig::default()
        }
    }

    /// `Kmax` in absolute terms.
    pub fn kmax(&self) -> f64 {
        self.tracing_rate * self.max_rate_factor
    }
}

/// Converts observed collection *work* into deterministic pause
/// milliseconds, calibrated to the paper's 4-way 550 MHz testbed so
/// reproduced tables land in a comparable range. Wall-clock timing is
/// recorded alongside; the work model is what the benches print by
/// default because it is independent of the host's core count.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Tracing cost per byte scanned (ns). The paper's STW marker covers
    /// ~150 MB in ~235 ms on 4 processors ⇒ ≈ 6 ns/B per worker.
    pub trace_ns_per_byte: f64,
    /// Bitwise sweep cost per live object (ns).
    pub sweep_ns_per_live_object: f64,
    /// Bitwise sweep cost per heap chunk (bitmap scan, ns).
    pub sweep_ns_per_chunk: f64,
    /// Card-table scan cost per card examined (ns).
    pub card_scan_ns_per_card: f64,
    /// Cost per dirty card cleaned, excluding the object tracing it
    /// triggers (ns).
    pub card_clean_ns_per_card: f64,
    /// Root scanning cost per stack slot (ns).
    pub root_ns_per_slot: f64,
    /// Fixed per-pause overhead (thread stop/start, ns).
    pub pause_overhead_ns: f64,
    /// Effective parallel GC workers the model divides by (the paper's
    /// machine has 4 processors).
    pub workers: usize,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            trace_ns_per_byte: 6.0,
            sweep_ns_per_live_object: 25.0,
            sweep_ns_per_chunk: 4000.0,
            card_scan_ns_per_card: 6.0,
            card_clean_ns_per_card: 250.0,
            root_ns_per_slot: 40.0,
            pause_overhead_ns: 1_000_000.0,
            workers: 4,
        }
    }
}

impl CostModel {
    /// Milliseconds for `bytes` of tracing work on one worker.
    pub fn trace_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * self.trace_ns_per_byte / 1e6
    }

    /// Milliseconds to sweep `live_objects` over `chunks` chunks on one
    /// worker.
    pub fn sweep_ms(&self, live_objects: u64, chunks: u64) -> f64 {
        (live_objects as f64 * self.sweep_ns_per_live_object
            + chunks as f64 * self.sweep_ns_per_chunk)
            / 1e6
    }

    /// Milliseconds to scan `scanned` cards and clean `dirty` of them on
    /// one worker (tracing triggered by cleaning is costed separately).
    pub fn card_ms(&self, scanned: u64, dirty: u64) -> f64 {
        (scanned as f64 * self.card_scan_ns_per_card + dirty as f64 * self.card_clean_ns_per_card)
            / 1e6
    }

    /// Milliseconds to scan `slots` root slots on one worker.
    pub fn roots_ms(&self, slots: u64) -> f64 {
        slots as f64 * self.root_ns_per_slot / 1e6
    }

    /// Divides single-worker milliseconds across the modelled workers and
    /// adds the fixed pause overhead.
    pub fn parallelize(&self, single_worker_ms: f64) -> f64 {
        single_worker_ms / self.workers.max(1) as f64 + self.pause_overhead_ns / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = GcConfig::default();
        assert_eq!(c.tracing_rate, 8.0);
        assert_eq!(c.pool.packets, 1000);
        assert_eq!(c.pool.capacity, 493);
        assert_eq!(c.background_threads, 4);
        assert_eq!(c.card_clean_passes, 1);
        assert_eq!(c.kmax(), 16.0);
    }

    #[test]
    fn cost_model_scales_linearly() {
        let m = CostModel::default();
        assert!((m.trace_ms(1_000_000) - 6.0).abs() < 1e-9);
        assert!(m.sweep_ms(100, 10) > 0.0);
        let single = m.trace_ms(150 << 20);
        let par = m.parallelize(single);
        // ~150 MB of live data: about the paper's 256 MB heap at 60%
        // residency; the model should land near the paper's 235 ms mark.
        assert!(par > 150.0 && par < 350.0, "modelled mark pause {par} ms");
    }

    #[test]
    fn stw_config_selects_baseline() {
        let c = GcConfig::stw_with_heap_bytes(1 << 20);
        assert_eq!(c.mode, CollectorMode::StopTheWorld);
        assert_eq!(c.heap.heap_bytes, 1 << 20);
    }
}
