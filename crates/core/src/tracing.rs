//! Tracing machinery: the §5.2 allocation-bit batch protocol, concurrent
//! tracing increments, card cleaning (§2.1/§5.3), and root scanning.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mcgc_heap::ObjectRef;
use mcgc_membar::{acquire_fence, full_fence, FenceKind};
use mcgc_packets::{PushOutcome, WorkBuffer};

use mcgc_telemetry::SpanKind;

use crate::collector::Gc;
use crate::roots::MutatorShared;

/// Who is doing tracing work (for attribution of the `T` counters).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum TraceRole {
    /// A mutator's incremental duty (paced by the progress formula).
    Mutator,
    /// A low-priority background thread.
    Background,
}

/// Every `OVERFLOW_BACKOFF_PERIOD`-th §4.3 overflow yields the tracer:
/// sustained overflow means the pool is exhausted, and hammering it with
/// more push attempts only steals cycles from whoever is draining it.
const OVERFLOW_BACKOFF_PERIOD: u64 = 32;

impl Gc {
    // ------------------------------------------------------------------
    // object tracing
    // ------------------------------------------------------------------

    /// Marks `child` and queues it for tracing; on packet overflow falls
    /// back to mark + dirty card (§4.3).
    #[inline]
    pub(crate) fn mark_and_push(&self, child: ObjectRef, buf: &mut WorkBuffer<'_, ObjectRef>) {
        if self.heap.mark(child) {
            match buf.push(child) {
                PushOutcome::Pushed => {}
                PushOutcome::Overflow(obj) => {
                    // §4.3: temporary overflow — the object stays marked
                    // and its card is dirtied so final card cleaning
                    // rescans it.
                    let n = self.counters.overflows.fetch_add(1, Ordering::Relaxed) + 1;
                    self.heap.cards().dirty(obj.card());
                    if n.is_multiple_of(OVERFLOW_BACKOFF_PERIOD) {
                        self.tel.on_overflow_backoff();
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Scans `obj`'s reference slots, marking and queueing unmarked
    /// children. Returns the bytes scanned.
    #[inline]
    pub(crate) fn scan_object(&self, obj: ObjectRef, buf: &mut WorkBuffer<'_, ObjectRef>) -> u64 {
        let header = self.heap.header(obj);
        self.heap
            .scan_refs(obj, |child| self.mark_and_push(child, buf));
        header.size_bytes() as u64
    }

    /// Stop-the-world tracing of one object (allocation bits are all
    /// published; no deferral needed).
    pub(crate) fn trace_object_stw(
        &self,
        obj: ObjectRef,
        buf: &mut WorkBuffer<'_, ObjectRef>,
    ) -> u64 {
        debug_assert!(
            self.heap.is_published(obj),
            "unpublished object reached STW tracing"
        );
        self.scan_object(obj, buf)
    }

    /// One §5.2 batch: pops up to `trace_batch` objects, tests their
    /// allocation bits, issues one acquire fence, traces the safe ones
    /// and defers the unsafe ones. Returns `(objects_processed, bytes)`;
    /// `(0, 0)` means the buffer had no work.
    pub(crate) fn trace_batch_concurrent(
        &self,
        buf: &mut WorkBuffer<'_, ObjectRef>,
        deferred: &mut Vec<ObjectRef>,
    ) -> (usize, u64) {
        let batch_size = self.config.trace_batch;
        let mut batch: Vec<ObjectRef> = Vec::with_capacity(batch_size);
        while batch.len() < batch_size {
            match buf.pop() {
                Some(o) => batch.push(o),
                None => break,
            }
        }
        if batch.is_empty() {
            return (0, 0);
        }
        // §5.2 tracer steps 2-4: test allocation bits, fence once, trace
        // safe objects, defer unsafe ones.
        let safety: Vec<bool> = batch.iter().map(|&o| self.heap.is_published(o)).collect();
        acquire_fence(FenceKind::TraceBatch);
        let mut bytes = 0;
        let n = batch.len();
        for (obj, safe) in batch.into_iter().zip(safety) {
            if safe {
                bytes += self.scan_object(obj, buf);
            } else {
                deferred.push(obj);
            }
        }
        (n, bytes)
    }

    /// Parks the accumulated deferred objects into the Deferred sub-pool
    /// (§5.2); falls back to dirtying their cards if no packet is
    /// available.
    pub(crate) fn park_deferred(&self, deferred: &mut Vec<ObjectRef>) {
        if deferred.is_empty() {
            return;
        }
        self.counters
            .deferred
            .fetch_add(deferred.len() as u64, Ordering::Relaxed);
        while !deferred.is_empty() {
            match self.pool.get_empty() {
                Some(mut packet) => {
                    while let Some(obj) = deferred.pop() {
                        if packet.push(obj).is_err() {
                            deferred.push(obj);
                            break;
                        }
                    }
                    packet.defer();
                }
                None => {
                    // No packets: the objects are already marked; dirty
                    // their cards so the stop-the-world phase rescans them.
                    for obj in deferred.drain(..) {
                        self.heap.cards().dirty(obj.card());
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // tracing increments (§3)
    // ------------------------------------------------------------------

    /// Performs up to `quota` bytes of concurrent collection work on
    /// behalf of `role`: packet tracing first, then card cleaning, then
    /// leftover-stack scanning and deferred recycling. Returns the bytes
    /// of work done.
    pub(crate) fn trace_increment(
        &self,
        quota: u64,
        role: TraceRole,
        requester: Option<&Arc<MutatorShared>>,
    ) -> u64 {
        if quota == 0 || !self.in_concurrent_phase() {
            return 0;
        }
        let start_ns = if self.tel.hub.is_enabled() {
            Some(self.tel.hub.now_ns())
        } else {
            None
        };
        let mut incr_span = self.tel.hub.spans().span(
            match role {
                TraceRole::Mutator => SpanKind::MutatorIncrement,
                TraceRole::Background => SpanKind::BackgroundIncrement,
            },
            0,
        );
        let mut buf = WorkBuffer::new(&self.pool);
        let mut deferred = Vec::new();
        let mut done = 0u64;
        let mut recycled_this_increment = false;
        while done < quota {
            // A tracing increment can run for a long time without passing
            // an allocation or write-barrier poll; ack any concurrent
            // handshake here so peers don't wait out their timeout.
            if let Some(m) = requester {
                self.poll_handshake(m);
            }
            let (n, bytes) = self.trace_batch_concurrent(&mut buf, &mut deferred);
            if n > 0 {
                done += bytes;
                self.credit_tracing(role, bytes);
                continue;
            }
            // No packet work: clean cards (§2.1 — deferred as long as
            // tracing work was available).
            let cleaned = self.clean_cards_quantum(&mut buf, requester);
            if cleaned > 0 {
                done += cleaned;
                self.credit_tracing(role, cleaned);
                continue;
            }
            // No cards either: scan a leftover stack or recycle deferred
            // packets, then retry.
            if self.scan_one_unscanned_stack(&mut buf) {
                continue;
            }
            if !recycled_this_increment && self.pool.has_deferred() {
                self.pool.recycle_deferred();
                recycled_this_increment = true;
                continue;
            }
            break; // genuinely out of concurrent work
        }
        self.park_deferred(&mut deferred);
        self.tel
            .on_packet_claims(buf.input_claims(), buf.output_claims());
        buf.finish();
        incr_span.set_arg(done);
        if let Some(start) = start_ns {
            if done > 0 {
                self.tel
                    .on_increment(role, self.cycle(), done, start, self.tel.hub.now_ns());
            }
        }
        done
    }

    fn credit_tracing(&self, role: TraceRole, bytes: u64) {
        match role {
            TraceRole::Mutator => self
                .counters
                .traced_mutator
                .fetch_add(bytes, Ordering::Relaxed),
            TraceRole::Background => self
                .counters
                .traced_background
                .fetch_add(bytes, Ordering::Relaxed),
        };
    }

    /// True when the concurrent phase has no work left (§2.1 termination:
    /// all stacks scanned, cards cleaned, no marked objects to trace).
    pub(crate) fn concurrent_work_exhausted(&self) -> bool {
        if !self.in_concurrent_phase() {
            return false;
        }
        if !self.card_state.lock().done {
            return false;
        }
        if !self.all_stacks_scanned() {
            return false;
        }
        // Packets: everything is empty, deferred (deferred objects wait
        // for the stop-the-world phase when their allocation bits must be
        // published), or condemned by the watchdog (written off; their
        // lost greys are re-derived via card flooding at the pause).
        let s = self.pool.stats();
        s.empty + s.deferred + s.condemned >= self.pool.total_packets()
    }

    fn all_stacks_scanned(&self) -> bool {
        let cycle = self.cycle();
        if self.global_scanned_cycle.load(Ordering::Relaxed) < cycle {
            return false;
        }
        self.mutators.lock().iter().all(|m| m.stack_scanned(cycle))
    }

    // ------------------------------------------------------------------
    // card cleaning (§2.1, §5.3)
    // ------------------------------------------------------------------

    /// One card-cleaning quantum: refills the registry by snapshotting a
    /// slice of the card table (one handshake per batch, §5.3), then
    /// cleans a few registered cards. Returns bytes of work done (0 =
    /// no cards left this pass).
    pub(crate) fn clean_cards_quantum(
        &self,
        buf: &mut WorkBuffer<'_, ObjectRef>,
        requester: Option<&Arc<MutatorShared>>,
    ) -> u64 {
        let ncards = self.heap.cards().len();
        let take: Vec<usize> = loop {
            let mut cs = self.card_state.lock();
            if cs.done {
                return 0;
            }
            if !cs.registry.is_empty() {
                let n = cs.registry.len().min(16);
                break cs.registry.drain(..n).collect();
            }
            // §5.3 step 1: register dirty cards from the next slice and
            // clear their indicators.
            let mut found = Vec::new();
            while found.is_empty() && cs.cursor < ncards {
                let end = (cs.cursor + self.config.card_clean_batch).min(ncards);
                self.heap.cards().snapshot_dirty(cs.cursor, end, &mut found);
                self.counters
                    .cards_table_scanned
                    .fetch_add((end - cs.cursor) as u64, Ordering::Relaxed);
                cs.cursor = end;
            }
            if found.is_empty() {
                // Slice scan finished with nothing found: pass done.
                if cs.pass + 1 < self.config.card_clean_passes {
                    cs.pass += 1;
                    cs.cursor = 0;
                    return 1; // report progress; next quantum rescans
                }
                cs.done = true;
                return 0;
            }
            // §5.3 step 2: force mutators to fence before the registered
            // cards are cleaned. A real rendezvous: every mutator acks
            // (with a fence) at its next safepoint poll, or the collector
            // times out into a global-fence fallback. The snapshot cards
            // are still thread-local here, so the registry lock is
            // released across the wait: a peer stuck on it could never
            // poll, which would turn every rendezvous into a timeout.
            drop(cs);
            self.card_handshake(requester);
            self.counters.handshakes.fetch_add(1, Ordering::Relaxed);
            self.tel.on_handshake(self.cycle(), found.len() as u64);
            self.card_state.lock().registry.extend(found);
            // Loop back: drain from the registry (possibly racing other
            // cleaners for these cards, which is fine — they fenced too).
        };
        let mut bytes = 0;
        for card in take {
            bytes += self.clean_one_card(card, buf, false);
        }
        self.counters
            .card_scanned_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        bytes.max(1)
    }

    /// §5.3 step 2 as a real rendezvous: advances the handshake epoch and
    /// waits (bounded by `config.handshake_timeout`) for every registered
    /// mutator to fence and ack at its next safepoint poll. On timeout —
    /// a mutator blocked in think time, or one whose ack a fault plan
    /// swallowed — the collector falls back to a global full fence, which
    /// on the host orders the snapshot by itself; the laggard completes
    /// the protocol at its next poll. Returns true if everyone acked.
    pub(crate) fn card_handshake(&self, requester: Option<&Arc<MutatorShared>>) -> bool {
        // Span arg: 1 = every mutator acked, 0 = timed out into the
        // global-fence fallback.
        let mut hs_span = self.tel.hub.spans().span(SpanKind::Handshake, 0);
        let epoch = self.handshake_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        // The collector side of the rendezvous fences unconditionally;
        // the requesting mutator is inside this call, so ack for it.
        full_fence(FenceKind::CardHandshake);
        if let Some(m) = requester {
            m.handshake_seen.store(epoch, Ordering::Release);
        }
        let deadline = std::time::Instant::now() + self.config.handshake_timeout;
        loop {
            // A mutator parked in a safe region has no unpublished writes
            // (its `safe_parked` release store ordered them) and cannot
            // poll until it wakes — count it as implicitly acked.
            let pending =
                self.mutators.lock().iter().any(|m| {
                    m.handshake_seen.load(Ordering::Acquire) < epoch && !m.is_safe_parked()
                });
            if !pending {
                self.tel.on_handshake_acked();
                hs_span.set_arg(1);
                return true;
            }
            if std::time::Instant::now() >= deadline {
                full_fence(FenceKind::CardHandshake);
                self.tel.on_handshake_timeout();
                return false;
            }
            // Two mutators can rendezvous concurrently (the registry lock
            // is not held here); ack the peer's epoch while waiting for
            // ours or neither ever completes.
            if let Some(m) = requester {
                self.poll_handshake(m);
            }
            std::thread::yield_now();
        }
    }

    /// §5.3 step 3: cleans one registered card — rescans the marked
    /// objects starting on it so references stored after their trace are
    /// discovered. Returns bytes scanned.
    pub(crate) fn clean_one_card(
        &self,
        card: usize,
        buf: &mut WorkBuffer<'_, ObjectRef>,
        stw: bool,
    ) -> u64 {
        let start = card * mcgc_heap::GRANULES_PER_CARD;
        let end = ((card + 1) * mcgc_heap::GRANULES_PER_CARD).min(self.heap.granules());
        let mut bytes = 0;
        let alloc = self.heap.alloc_bits();
        let marks = self.heap.mark_bits();
        // Walk the *mark* bitmap, not the allocation bitmap: a deferred
        // object parked onto its card by the pool-exhaustion fallback is
        // marked but not yet published, and walking allocation bits
        // would skip it while the card's dirty indicator has already
        // been consumed — silently losing its children.
        let mut g = start.max(1);
        let mut unpublished = false;
        while let Some(found) = marks.next_set(g) {
            if found >= end {
                break;
            }
            if alloc.get(found) {
                let obj = ObjectRef::from_granule(found as u32);
                bytes += self.scan_object(obj, buf);
            } else {
                // §5.2: unsafe to scan until its allocation bit batch is
                // published; keep the card as coverage instead.
                unpublished = true;
            }
            g = found + 1;
        }
        if unpublished {
            debug_assert!(!stw, "unpublished marks survive cache retirement");
            self.heap.cards().dirty(card);
        }
        if stw {
            self.counters
                .cards_cleaned_stw
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters
                .cards_cleaned_conc
                .fetch_add(1, Ordering::Relaxed);
        }
        bytes
    }

    // ------------------------------------------------------------------
    // root scanning
    // ------------------------------------------------------------------

    /// Scans a mutator's shadow stack, marking and queueing its roots.
    pub(crate) fn scan_stack(&self, m: &Arc<MutatorShared>, buf: &mut WorkBuffer<'_, ObjectRef>) {
        let (refs, slots) = m.snapshot_roots();
        self.counters
            .root_slots
            .fetch_add(slots as u64, Ordering::Relaxed);
        for r in refs {
            self.mark_and_push(r, buf);
        }
    }

    /// Scans the global root table.
    pub(crate) fn scan_global_roots(&self, buf: &mut WorkBuffer<'_, ObjectRef>) {
        let roots: Vec<ObjectRef> = {
            let g = self.global_roots.lock();
            self.counters
                .root_slots
                .fetch_add(g.len() as u64, Ordering::Relaxed);
            g.iter().filter_map(|&raw| ObjectRef::decode(raw)).collect()
        };
        for r in roots {
            self.mark_and_push(r, buf);
        }
    }

    /// Concurrent once-per-cycle scan of the calling mutator's own stack
    /// (§2.1: the first allocation request per thread scans its stack).
    pub(crate) fn ensure_own_stack_scanned(
        &self,
        m: &Arc<MutatorShared>,
        buf: &mut WorkBuffer<'_, ObjectRef>,
    ) {
        let cycle = self.cycle();
        if m.claim_stack_scan(cycle) {
            self.scan_stack(m, buf);
        }
        // First tracer also picks up the global roots.
        let seen = self.global_scanned_cycle.load(Ordering::Relaxed);
        if seen < cycle
            && self
                .global_scanned_cycle
                .compare_exchange(seen, cycle, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.scan_global_roots(buf);
        }
    }

    /// §2.1: threads that never allocate have their stacks scanned when
    /// no other tracing work remains. Scans at most one; returns true if
    /// it scanned.
    pub(crate) fn scan_one_unscanned_stack(&self, buf: &mut WorkBuffer<'_, ObjectRef>) -> bool {
        let cycle = self.cycle();
        // Global roots count as a "stack" here too.
        let seen = self.global_scanned_cycle.load(Ordering::Relaxed);
        if seen < cycle
            && self
                .global_scanned_cycle
                .compare_exchange(seen, cycle, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.scan_global_roots(buf);
            return true;
        }
        let victim = {
            let mutators = self.mutators.lock();
            mutators
                .iter()
                .find(|m| !m.stack_scanned(cycle))
                .map(Arc::clone)
        };
        match victim {
            Some(m) if m.claim_stack_scan(cycle) => {
                self.scan_stack(&m, buf);
                true
            }
            Some(_) => true, // someone else claimed it; retry later
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // mutator duties (called from the allocation slow path)
    // ------------------------------------------------------------------

    /// The incremental duty attached to an allocation of
    /// `allocated_bytes` (§3.1): compute the quota from the progress
    /// formula, trace, record the tracing factor, and finish the phase if
    /// the concurrent work is exhausted.
    pub(crate) fn mutator_increment(&self, m: &Arc<MutatorShared>, allocated_bytes: u64) {
        if !self.in_concurrent_phase() {
            return;
        }
        // Fault: an artificial burst of dirty cards (write-barrier storm)
        // to stress card cleaning and the §5.3 handshake machinery.
        if mcgc_fault::point!("cards.flood") {
            self.fault_flood_cards();
        }
        // §2.1: the first allocation request per thread scans its stack.
        {
            let mut buf = WorkBuffer::new(&self.pool);
            self.ensure_own_stack_scanned(m, &mut buf);
            buf.finish();
        }
        let traced = self.counters.traced_concurrent();
        let free = self.heap.free_bytes() as u64;
        let quota = self
            .pacer
            .lock()
            .increment_quota(allocated_bytes, traced, free);
        if quota > 0 {
            let done = self.trace_increment(quota, TraceRole::Mutator, Some(m));
            let factor = done as f64 / quota as f64;
            let mut acc = self.increments.lock();
            acc.n += 1;
            acc.factor_sum += factor;
            acc.factor_sq_sum += factor * factor;
        }
        self.maybe_update_background_estimate();
        #[cfg(feature = "verify-gc")]
        self.audit_increment_boundary();
        if self.concurrent_work_exhausted() {
            self.collect_inner(crate::stats::Trigger::ConcurrentDone);
        }
    }

    /// Backs the `cards.flood` fault site: dirties an evenly spaced set
    /// of cards (count = the plan's payload, default 128), simulating a
    /// mutator write storm that stresses card cleaning and handshakes.
    fn fault_flood_cards(&self) {
        let ncards = self.heap.cards().len();
        if ncards == 0 {
            return;
        }
        let payload = mcgc_fault::payload("cards.flood");
        let n = if payload == 0 { 128 } else { payload as usize }.min(ncards);
        let step = (ncards / n).max(1);
        let mut card = 0;
        while card < ncards {
            self.heap.cards().dirty(card);
            card += step;
        }
    }

    /// Occasionally recomputes the background tracing ratio `B` and folds
    /// it into `Best` (§3.2).
    pub(crate) fn maybe_update_background_estimate(&self) {
        let w = self.bg_window_lock();
        let elapsed = w.0;
        if elapsed < std::time::Duration::from_millis(10) {
            return;
        }
        let bg_now = self.counters.traced_background.load(Ordering::Relaxed);
        let alloc_now = self.heap.bytes_allocated();
        let bg_delta = bg_now.saturating_sub(w.1);
        let alloc_delta = alloc_now.saturating_sub(w.2);
        if alloc_delta > 0 {
            self.pacer.lock().observe_background(bg_delta, alloc_delta);
        }
        self.bg_window_store(bg_now, alloc_now);
    }
}

// Small private helpers for the background window.
impl Gc {
    fn bg_window_lock(&self) -> (std::time::Duration, u64, u64) {
        let w = self.bg_window.lock();
        (w.at.elapsed(), w.bg_traced, w.allocated)
    }

    fn bg_window_store(&self, bg: u64, alloc: u64) {
        let mut w = self.bg_window.lock();
        w.at = std::time::Instant::now();
        w.bg_traced = bg;
        w.allocated = alloc;
    }
}
