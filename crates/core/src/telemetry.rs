//! Collector-side telemetry glue: a [`Telemetry`] hub plus pre-resolved
//! counter/gauge handles for every hot-path metric.
//!
//! Handles are registered once at collector construction; hot paths only
//! touch the `Arc<Counter>`/`Arc<Gauge>` atomics and never the registry's
//! name map. Counters that mirror per-cycle accounting are folded in once
//! per cycle (from the finished [`CycleStats`]), not per object, so the
//! always-on cost stays in the noise. Gauges are *pulled*: they refresh
//! only when [`Gc::telemetry_sample`](crate::Gc::telemetry_sample) runs
//! (e.g. once a second from `gc_top`).

use std::sync::Arc;

use mcgc_telemetry::{Counter, EventKind, Gauge, Telemetry};

use crate::stats::{emit_cycle_events, CycleStats};
use crate::tracing::TraceRole;

/// Which rung of the allocation-failure escalation ladder ran (ISSUE:
/// lazy-sweep progress → finish concurrent phase → full stop-the-world
/// → grow the heap → bounded backpressure stall → typed OOM).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum EscalationRung {
    /// Rung 1: lazy-sweep progress recovered memory without a pause.
    LazySweep,
    /// Rung 2: the concurrent phase was forced to completion.
    FinishConcurrent,
    /// Rung 3: a full stop-the-world collection from idle.
    FullStw,
    /// Rung 4: a new heap segment was committed (soft growth past the
    /// initial arena, up to the hard limit).
    Grow,
}

/// The collector's telemetry bundle (one per [`crate::Gc`]).
pub(crate) struct GcTelemetry {
    /// The embedded hub: event ring, histograms, registry, MMU tracker.
    pub(crate) hub: Telemetry,

    // -- counters (cumulative across cycles, updated at cycle end) --
    cycles: Arc<Counter>,
    pauses: Arc<Counter>,
    traced_mutator_bytes: Arc<Counter>,
    traced_background_bytes: Arc<Counter>,
    traced_stw_bytes: Arc<Counter>,
    cards_cleaned_concurrent: Arc<Counter>,
    cards_cleaned_stw: Arc<Counter>,
    handshakes: Arc<Counter>,
    cas_ops: Arc<Counter>,
    overflows: Arc<Counter>,
    deferred_objects: Arc<Counter>,
    // -- counters bumped directly on (cold) hot paths --
    increments_mutator: Arc<Counter>,
    increments_background: Arc<Counter>,
    alloc_slow: Arc<Counter>,
    alloc_large: Arc<Counter>,
    lazy_retirements: Arc<Counter>,
    // -- degraded-mode counters (escalation ladder, watchdog, handshake
    //    timeout, pool-exhaustion backoff) --
    pool_input_claims: Arc<Counter>,
    pool_output_claims: Arc<Counter>,
    alloc_retries: Arc<Counter>,
    alloc_rung_lazy: Arc<Counter>,
    alloc_rung_finish: Arc<Counter>,
    alloc_rung_stw: Arc<Counter>,
    alloc_rung_grow: Arc<Counter>,
    alloc_stalls: Arc<Counter>,
    emergency_kickoffs: Arc<Counter>,
    alloc_ooms: Arc<Counter>,
    watchdog_reclaimed: Arc<Counter>,
    handshake_acks: Arc<Counter>,
    handshake_timeouts: Arc<Counter>,
    overflow_backoffs: Arc<Counter>,
    // -- measured per-phase pause wall time (folded at cycle end) --
    pause_cards_ns: Arc<Counter>,
    pause_roots_ns: Arc<Counter>,
    pause_drain_ns: Arc<Counter>,
    pause_sweep_ns: Arc<Counter>,
    pause_clear_ns: Arc<Counter>,
    // -- sweep-epoch straggler fences (bumped as each fence completes) --
    sweep_straggler_chunks: Arc<Counter>,
    sweep_straggler_ns: Arc<Counter>,

    // -- gauges (refreshed by telemetry_sample) --
    phase: Arc<Gauge>,
    cycle: Arc<Gauge>,
    heap_occupancy: Arc<Gauge>,
    heap_free_bytes: Arc<Gauge>,
    pacer_k0: Arc<Gauge>,
    pacer_l: Arc<Gauge>,
    pacer_m: Arc<Gauge>,
    pacer_b: Arc<Gauge>,
    pacer_kickoff_threshold: Arc<Gauge>,
    pool_empty: Arc<Gauge>,
    pool_non_empty: Arc<Gauge>,
    pool_almost_full: Arc<Gauge>,
    pool_deferred: Arc<Gauge>,
    pool_entries: Arc<Gauge>,
    pool_occupancy: Arc<Gauge>,
    bg_tracers_alive: Arc<Gauge>,
    heap_segments_committed: Arc<Gauge>,
    heap_segments_peak: Arc<Gauge>,
    heap_segment_grows: Arc<Gauge>,
    heap_segment_shrinks: Arc<Gauge>,
    heap_committed_bytes: Arc<Gauge>,
    alloc_shards: Arc<Gauge>,
    alloc_shard_contention: Arc<Gauge>,
    alloc_refill_steals: Arc<Gauge>,
    alloc_wilderness_refills: Arc<Gauge>,
    // -- sweep-epoch accounting, mirrored from the heap's cumulative
    //    atomics (same pull style as the segment grow/shrink counters) --
    sweep_refill_chunks: Arc<Gauge>,
    sweep_bg_chunks: Arc<Gauge>,
    sweep_on_pause_granules: Arc<Gauge>,
    sweep_off_pause_granules: Arc<Gauge>,
    // -- worst-pause postmortem (refreshed by telemetry_sample from the
    //    flight recorder's span rings) --
    postmortem_coverage: Arc<Gauge>,
    postmortem_wall_ns: Arc<Gauge>,
    postmortem_imbalance: Arc<Gauge>,
    postmortem_drain_wait_ns: Arc<Gauge>,
    // -- GC scheduler (refreshed by telemetry_sample from the
    //    scheduler's stat atomics) --
    sched_workers: Arc<Gauge>,
    sched_pool_threads: Arc<Gauge>,
    sched_sessions: Arc<Gauge>,
    sched_wakeups: Arc<Gauge>,
    sched_stalls: Arc<Gauge>,
    sched_active_workers: Arc<Gauge>,
    sched_session_open: Arc<Gauge>,
    /// Per-bucket `(runs, items)` gauge pair, indexed by
    /// [`crate::scheduler::Bucket`] order
    /// (`gc_sched_bucket_{name}_{runs,items}_total`).
    sched_buckets: Vec<(Arc<Gauge>, Arc<Gauge>)>,
    /// Work items claimed per session worker, one gauge per slot
    /// (`gc_sched_worker{i}_items_total`; slot 0 = the pause leader).
    sched_claimed: Vec<Arc<Gauge>>,
}

impl GcTelemetry {
    pub(crate) fn new(ring_capacity: usize, stw_workers: usize) -> GcTelemetry {
        let hub = Telemetry::new(ring_capacity);
        let r = hub.registry();
        let c = |name: &str| r.counter(name);
        let g = |name: &str| r.gauge(name);

        GcTelemetry {
            sched_claimed: (0..stw_workers.max(1))
                .map(|i| g(&format!("gc_sched_worker{i}_items_total")))
                .collect(),
            sched_buckets: (0..crate::scheduler::Bucket::COUNT)
                .map(|i| {
                    let name = crate::scheduler::Bucket::from_index(i).name();
                    (
                        g(&format!("gc_sched_bucket_{name}_runs_total")),
                        g(&format!("gc_sched_bucket_{name}_items_total")),
                    )
                })
                .collect(),
            cycles: c("gc_cycles_total"),
            pauses: c("gc_pauses_total"),
            traced_mutator_bytes: c("gc_traced_mutator_bytes_total"),
            traced_background_bytes: c("gc_traced_background_bytes_total"),
            traced_stw_bytes: c("gc_traced_stw_bytes_total"),
            cards_cleaned_concurrent: c("gc_cards_cleaned_concurrent_total"),
            cards_cleaned_stw: c("gc_cards_cleaned_stw_total"),
            handshakes: c("gc_handshakes_total"),
            cas_ops: c("gc_pool_cas_ops_total"),
            overflows: c("gc_pool_overflows_total"),
            deferred_objects: c("gc_deferred_objects_total"),
            increments_mutator: c("gc_increments_mutator_total"),
            increments_background: c("gc_increments_background_total"),
            alloc_slow: c("heap_alloc_slow_path_total"),
            alloc_large: c("heap_alloc_large_total"),
            lazy_retirements: c("gc_lazy_sweep_retirements_total"),
            pool_input_claims: c("gc_pool_input_claims_total"),
            pool_output_claims: c("gc_pool_output_claims_total"),
            alloc_retries: c("gc_alloc_retry_total"),
            alloc_rung_lazy: c("gc_alloc_rung_lazy_total"),
            alloc_rung_finish: c("gc_alloc_rung_finish_total"),
            alloc_rung_stw: c("gc_alloc_rung_stw_total"),
            alloc_rung_grow: c("gc_alloc_rung_grow_total"),
            alloc_stalls: c("gc_alloc_stalls_total"),
            emergency_kickoffs: c("gc_emergency_kickoffs_total"),
            alloc_ooms: c("gc_alloc_oom_total"),
            watchdog_reclaimed: c("gc_watchdog_reclaimed_packets_total"),
            handshake_acks: c("gc_handshake_acks_total"),
            handshake_timeouts: c("gc_handshake_timeouts_total"),
            overflow_backoffs: c("gc_pool_overflow_backoffs_total"),
            pause_cards_ns: c("gc_pause_cards_ns_total"),
            pause_roots_ns: c("gc_pause_roots_ns_total"),
            pause_drain_ns: c("gc_pause_drain_ns_total"),
            pause_sweep_ns: c("gc_pause_sweep_ns_total"),
            pause_clear_ns: c("gc_pause_clear_ns_total"),
            sweep_straggler_chunks: c("gc_sweep_straggler_chunks_total"),
            sweep_straggler_ns: c("gc_sweep_straggler_ns_total"),
            phase: g("gc_phase"),
            cycle: g("gc_cycle"),
            heap_occupancy: g("heap_occupancy"),
            heap_free_bytes: g("heap_free_bytes"),
            pacer_k0: g("gc_pacer_k0"),
            pacer_l: g("gc_pacer_l_bytes"),
            pacer_m: g("gc_pacer_m_bytes"),
            pacer_b: g("gc_pacer_b"),
            pacer_kickoff_threshold: g("gc_pacer_kickoff_threshold_bytes"),
            pool_empty: g("gc_pool_empty_packets"),
            pool_non_empty: g("gc_pool_non_empty_packets"),
            pool_almost_full: g("gc_pool_almost_full_packets"),
            pool_deferred: g("gc_pool_deferred_packets"),
            pool_entries: g("gc_pool_entries"),
            pool_occupancy: g("gc_pool_occupancy"),
            bg_tracers_alive: g("gc_bg_tracers_alive"),
            heap_segments_committed: g("heap_segments_committed"),
            heap_segments_peak: g("heap_segments_peak"),
            heap_segment_grows: g("heap_segment_grows_total"),
            heap_segment_shrinks: g("heap_segment_shrinks_total"),
            heap_committed_bytes: g("heap_committed_bytes"),
            alloc_shards: g("heap_alloc_shards"),
            alloc_shard_contention: g("heap_alloc_shard_lock_contention_total"),
            alloc_refill_steals: g("heap_alloc_refill_steals_total"),
            alloc_wilderness_refills: g("heap_alloc_wilderness_refills_total"),
            sweep_refill_chunks: g("gc_sweep_on_refill_chunks_total"),
            sweep_bg_chunks: g("gc_bg_sweep_chunks_total"),
            sweep_on_pause_granules: g("gc_sweep_reclaimed_on_pause_granules_total"),
            sweep_off_pause_granules: g("gc_sweep_reclaimed_off_pause_granules_total"),
            postmortem_coverage: g("gc_postmortem_coverage"),
            postmortem_wall_ns: g("gc_postmortem_pause_wall_ns"),
            postmortem_imbalance: g("gc_postmortem_worst_imbalance"),
            postmortem_drain_wait_ns: g("gc_postmortem_drain_wait_ns"),
            sched_workers: g("gc_sched_workers"),
            sched_pool_threads: g("gc_sched_pool_threads"),
            sched_sessions: g("gc_sched_sessions_total"),
            sched_wakeups: g("gc_sched_wakeups_total"),
            sched_stalls: g("gc_sched_stalls_total"),
            sched_active_workers: g("gc_sched_active_workers"),
            sched_session_open: g("gc_sched_session_open"),
            hub,
        }
    }

    // ------------------------------------------------------------------
    // phase events
    // ------------------------------------------------------------------

    /// Cycle initialization (§2.1): card table + mark bits cleared,
    /// counters reset. `free_bytes` is the headroom left at kickoff.
    pub(crate) fn on_cycle_begin(&self, cycle: u64, free_bytes: u64) {
        self.cycles.inc();
        self.hub.emit(EventKind::Kickoff, cycle as u32, free_bytes);
    }

    /// The concurrent phase is over (halted or exhausted); a pause with
    /// the given trigger follows immediately.
    pub(crate) fn on_concurrent_end(&self, cycle: u64, trigger_code: u64) {
        self.hub
            .emit(EventKind::ConcurrentEnd, cycle as u32, trigger_code);
    }

    pub(crate) fn on_stw_start(&self, cycle: u64, trigger_code: u64) {
        self.hub
            .emit(EventKind::StwStart, cycle as u32, trigger_code);
    }

    /// Pause complete: feeds the pause histogram and the MMU tracker and
    /// publishes the `StwEnd` event carrying the wall pause in ns.
    pub(crate) fn on_stw_end(&self, cycle: u64, start_ns: u64, end_ns: u64) {
        self.pauses.inc();
        self.hub.record_pause_ns(start_ns, end_ns);
        self.hub.emit(
            EventKind::StwEnd,
            cycle as u32,
            end_ns.saturating_sub(start_ns),
        );
    }

    pub(crate) fn on_sweep_start(&self, cycle: u64, lazy: bool) {
        self.hub
            .emit(EventKind::SweepStart, cycle as u32, lazy as u64);
    }

    pub(crate) fn on_sweep_end(&self, cycle: u64, live_objects: u64) {
        self.hub
            .emit(EventKind::SweepEnd, cycle as u32, live_objects);
    }

    /// One straggler fence completed: the previous sweep epoch's last
    /// `chunks` chunks were drained in `ns` nanoseconds, off-pause, just
    /// before the next cycle began.
    pub(crate) fn on_straggler(&self, chunks: u64, ns: u64) {
        self.sweep_straggler_chunks.add(chunks);
        self.sweep_straggler_ns.add(ns);
        self.hub.record_straggler_ns(ns);
    }

    /// A completed lazy-sweep plan was retired; `free_bytes` is the free
    /// space after the last chunk was swept.
    pub(crate) fn on_lazy_retired(&self, cycle: u64, free_bytes: u64) {
        self.lazy_retirements.inc();
        self.hub
            .emit(EventKind::LazySweepRetired, cycle as u32, free_bytes);
    }

    /// One §5.3 card-snapshot handshake registered `cards` dirty cards.
    pub(crate) fn on_handshake(&self, cycle: u64, cards: u64) {
        self.hub.emit(EventKind::Handshake, cycle as u32, cards);
    }

    /// One tracing increment finished: `bytes` of work in
    /// `end_ns - start_ns`. Publishes the per-increment event and feeds
    /// the increment-latency histogram.
    pub(crate) fn on_increment(
        &self,
        role: TraceRole,
        cycle: u64,
        bytes: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        let kind = match role {
            TraceRole::Mutator => {
                self.increments_mutator.inc();
                EventKind::MutatorIncrement
            }
            TraceRole::Background => {
                self.increments_background.inc();
                EventKind::BackgroundIncrement
            }
        };
        self.hub
            .record_increment_ns(end_ns.saturating_sub(start_ns));
        self.hub.emit(kind, cycle as u32, bytes);
    }

    /// A tracing stint returned its [`WorkBuffer`]: fold the packets it
    /// claimed from the input/output sub-pools into the claim counters.
    ///
    /// [`WorkBuffer`]: mcgc_packets::WorkBuffer
    pub(crate) fn on_packet_claims(&self, input: u64, output: u64) {
        if input > 0 {
            self.pool_input_claims.add(input);
        }
        if output > 0 {
            self.pool_output_claims.add(output);
        }
    }

    /// An allocation took the slow path (cache refill / large object).
    pub(crate) fn on_alloc_slow(&self, large: bool) {
        if large {
            self.alloc_large.inc();
        } else {
            self.alloc_slow.inc();
        }
    }

    // ------------------------------------------------------------------
    // degraded-mode events
    // ------------------------------------------------------------------

    /// An allocation slow path looped for another attempt (any rung).
    pub(crate) fn on_alloc_retry(&self) {
        self.alloc_retries.inc();
    }

    /// One rung of the escalation ladder ran for a failing allocation.
    pub(crate) fn on_alloc_rung(&self, rung: EscalationRung) {
        match rung {
            EscalationRung::LazySweep => self.alloc_rung_lazy.inc(),
            EscalationRung::FinishConcurrent => self.alloc_rung_finish.inc(),
            EscalationRung::FullStw => self.alloc_rung_stw.inc(),
            EscalationRung::Grow => self.alloc_rung_grow.inc(),
        }
    }

    /// A mutator finished one bounded backpressure stall (deadline rung):
    /// `ns` is the time it spent waiting and helping before memory
    /// appeared or the deadline expired.
    pub(crate) fn on_alloc_stall(&self, ns: u64) {
        self.alloc_stalls.inc();
        self.hub.record_alloc_stall_ns(ns);
    }

    /// The soft limit forced a collection kickoff ahead of the pacer's
    /// own threshold (emergency cycle).
    pub(crate) fn on_emergency_kickoff(&self) {
        self.emergency_kickoffs.inc();
    }

    /// The ladder gave up: a typed OutOfMemory was surfaced.
    pub(crate) fn on_alloc_oom(&self) {
        self.alloc_ooms.inc();
    }

    /// The pause watchdog condemned `n` packets checked out by stalled
    /// or dead tracers.
    pub(crate) fn on_watchdog_reclaim(&self, n: u64) {
        self.watchdog_reclaimed.add(n);
    }

    /// Every mutator acked a §5.3 card handshake within the timeout.
    pub(crate) fn on_handshake_acked(&self) {
        self.handshake_acks.inc();
    }

    /// A card handshake timed out into the global-fence fallback.
    pub(crate) fn on_handshake_timeout(&self) {
        self.handshake_timeouts.inc();
    }

    /// A tracer yielded after sustained §4.3 overflow (pool exhaustion
    /// backoff).
    pub(crate) fn on_overflow_backoff(&self) {
        self.overflow_backoffs.inc();
    }

    /// Cycle accounting is final: fold the per-cycle stats into the
    /// cumulative counters and emit the replayable `CycleStat*`/`CycleEnd`
    /// batch the §6 tables are rebuilt from.
    pub(crate) fn on_cycle_end(&self, stats: &CycleStats) {
        self.traced_mutator_bytes.add(stats.mutator_traced_bytes);
        self.traced_background_bytes
            .add(stats.background_traced_bytes);
        self.traced_stw_bytes.add(stats.stw_traced_bytes);
        self.cards_cleaned_concurrent
            .add(stats.cards_cleaned_concurrent);
        self.cards_cleaned_stw.add(stats.cards_cleaned_stw);
        self.handshakes.add(stats.handshakes);
        self.cas_ops.add(stats.cas_ops);
        self.overflows.add(stats.overflows);
        self.deferred_objects.add(stats.deferred_objects);
        self.pause_cards_ns.add(stats.cards_wall.as_nanos() as u64);
        self.pause_roots_ns.add(stats.roots_wall.as_nanos() as u64);
        self.pause_drain_ns.add(stats.drain_wall.as_nanos() as u64);
        self.pause_sweep_ns.add(stats.sweep_wall.as_nanos() as u64);
        self.pause_clear_ns.add(stats.clear_wall.as_nanos() as u64);
        emit_cycle_events(&self.hub, stats);
    }

    // ------------------------------------------------------------------
    // gauge refresh (pull)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn refresh_gauges(
        &self,
        phase_concurrent: bool,
        cycle: u64,
        heap_occupancy: f64,
        heap_free_bytes: u64,
        pacer: crate::pacing::PacerEstimates,
        pool: &mcgc_packets::PoolStats,
        pool_occupancy: f64,
        bg_alive: u64,
        alloc: &mcgc_heap::AllocShardStats,
        segments: &mcgc_heap::SegmentStats,
        sweep: &mcgc_heap::SweepCounters,
    ) {
        self.phase.set(if phase_concurrent { 1.0 } else { 0.0 });
        self.cycle.set_u64(cycle);
        self.heap_occupancy.set(heap_occupancy);
        self.heap_free_bytes.set_u64(heap_free_bytes);
        self.pacer_k0.set(pacer.k0);
        self.pacer_l.set(pacer.l);
        self.pacer_m.set(pacer.m);
        self.pacer_b.set(pacer.b);
        self.pacer_kickoff_threshold.set(pacer.kickoff_threshold);
        self.pool_empty.set_u64(pool.empty as u64);
        self.pool_non_empty.set_u64(pool.non_empty as u64);
        self.pool_almost_full.set_u64(pool.almost_full as u64);
        self.pool_deferred.set_u64(pool.deferred as u64);
        self.pool_entries.set_u64(pool.entries as u64);
        self.pool_occupancy.set(pool_occupancy);
        self.bg_tracers_alive.set_u64(bg_alive);
        self.heap_segments_committed
            .set_u64(segments.committed as u64);
        self.heap_segments_peak.set_u64(segments.peak as u64);
        self.heap_segment_grows.set_u64(segments.grows);
        self.heap_segment_shrinks.set_u64(segments.shrinks);
        self.heap_committed_bytes
            .set_u64((segments.committed * segments.seg_bytes) as u64);
        self.alloc_shards.set_u64(alloc.shards as u64);
        self.alloc_shard_contention.set_u64(alloc.contended_locks);
        self.alloc_refill_steals.set_u64(alloc.refill_steals);
        self.alloc_wilderness_refills
            .set_u64(alloc.wilderness_refills);
        self.sweep_refill_chunks.set_u64(sweep.refill_chunks);
        self.sweep_bg_chunks.set_u64(sweep.bg_chunks);
        self.sweep_on_pause_granules
            .set_u64(sweep.on_pause_granules);
        self.sweep_off_pause_granules
            .set_u64(sweep.off_pause_granules);
    }

    /// Refreshes the worst-pause postmortem gauges from the flight
    /// recorder. Pull-style: computing a postmortem scans the span
    /// rings, so it runs on the sampling thread, never the pause path.
    pub(crate) fn refresh_postmortem(&self) {
        if let Some(pm) = mcgc_telemetry::trace_export::worst_pause_postmortem(self.hub.spans()) {
            self.postmortem_coverage.set(pm.coverage);
            self.postmortem_wall_ns.set_u64(pm.wall_ns);
            self.postmortem_imbalance.set(pm.worst_imbalance);
            self.postmortem_drain_wait_ns.set_u64(pm.drain_wait_ns);
        }
    }

    /// Refreshes the scheduler gauges from the scheduler's stat atomics
    /// (pull-style, alongside [`GcTelemetry::refresh_gauges`]).
    pub(crate) fn refresh_sched(&self, sched: &crate::scheduler::Scheduler) {
        self.sched_workers.set_u64(sched.workers() as u64);
        self.sched_pool_threads.set_u64(sched.pool_threads() as u64);
        self.sched_sessions.set_u64(sched.sessions_total());
        self.sched_wakeups.set_u64(sched.wakeups_total());
        self.sched_stalls.set_u64(sched.stalls());
        self.sched_active_workers
            .set_u64(sched.active_workers() as u64);
        self.sched_session_open.set_u64(sched.session_open() as u64);
        for (i, (runs, items)) in self.sched_buckets.iter().enumerate() {
            let bucket = crate::scheduler::Bucket::from_index(i);
            runs.set_u64(sched.bucket_runs(bucket));
            items.set_u64(sched.bucket_items(bucket));
        }
        for (gauge, claimed) in self.sched_claimed.iter().zip(sched.claimed_per_worker()) {
            gauge.set_u64(claimed);
        }
    }
}

impl std::fmt::Debug for GcTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcTelemetry").finish_non_exhaustive()
    }
}
