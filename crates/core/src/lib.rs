//! `mcgc-core` — a parallel, incremental, mostly concurrent mark-sweep
//! garbage collector, reproducing Ossia et al., *"A Parallel, Incremental
//! and Concurrent GC for Servers"* (PLDI 2002).
//!
//! The collector (CGC) divides tracing into a **concurrent phase** —
//! marking performed by allocating mutators (paced by the §3 kickoff and
//! progress formulas) and by low-priority background threads, with a
//! card-marking write barrier recording objects modified after they were
//! traced — and a parallel **stop-the-world phase** that cleans the
//! remaining dirty cards, rescans thread stacks, completes marking, and
//! sweeps. Load balancing among the dynamic set of tracers uses the §4
//! *work packet* mechanism ([`mcgc_packets`]), and the §5 fence-batching
//! protocols keep weak-ordering fences to one per allocation cache, one
//! per packet, and none in the write barrier.
//!
//! A mature parallel stop-the-world collector
//! ([`CollectorMode::StopTheWorld`]) is included as the paper's baseline.
//!
//! # Quickstart
//!
//! ```
//! use mcgc_core::{Gc, GcConfig, ObjectShape};
//!
//! let gc = Gc::new(GcConfig::with_heap_bytes(8 << 20));
//! let mut mutator = gc.register_mutator();
//!
//! // A list node: 1 reference slot, 1 data granule.
//! let shape = ObjectShape::new(1, 1, 0);
//! let head = mutator.alloc(shape)?;
//! let root = mutator.root_push(Some(head));
//! let next = mutator.alloc(shape)?;
//! mutator.write_ref(head, 0, Some(next)); // write barrier
//! assert_eq!(mutator.read_ref(head, 0), Some(next));
//!
//! mutator.collect(); // explicit full collection
//! assert_eq!(mutator.root_get(root), Some(head));
//! drop(mutator);
//! gc.shutdown();
//! # Ok::<(), mcgc_core::GcError>(())
//! ```

mod collector;
mod config;
mod mutator;
mod pacing;
mod roots;
mod scheduler;
mod stats;
mod telemetry;
mod tracing;

pub use collector::{Gc, GcError, Phase};
pub use config::{CollectorMode, CostModel, GcConfig, SweepMode};
pub use mutator::Mutator;
pub use pacing::{Pacer, PacerEstimates};
pub use stats::{emit_cycle_events, CycleStats, GcLog, Trigger};

// Re-export the substrate types a user needs at the API boundary.
pub use mcgc_heap::{HeapConfig, ObjectRef, ObjectShape};
pub use mcgc_packets::{PoolConfig, PoolStats};

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GcConfig {
        let mut c = GcConfig::with_heap_bytes(4 << 20);
        c.background_threads = 1;
        c.stw_workers = 2;
        c
    }

    #[test]
    fn allocate_collect_survive() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let shape = ObjectShape::new(2, 2, 1);
        let a = m.alloc(shape).unwrap();
        let b = m.alloc(shape).unwrap();
        m.write_ref(a, 0, Some(b));
        m.root_push(Some(a));
        m.collect();
        assert_eq!(m.read_ref(a, 0), Some(b));
        assert!(gc.heap().is_published(a));
        assert_eq!(gc.log().cycles.len(), 1);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn garbage_is_reclaimed() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let shape = ObjectShape::new(0, 30, 0);
        // Allocate a lot of garbage (no roots): must not OOM.
        for _ in 0..100_000 {
            m.alloc(shape).unwrap();
        }
        assert!(!gc.log().cycles.is_empty(), "GC ran");
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn live_data_survives_many_cycles() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let node = ObjectShape::new(1, 3, 7);
        // A linked list of 1000 nodes kept live by one root.
        let head = m.alloc(node).unwrap();
        m.root_push(Some(head));
        let mut tail = head;
        for _ in 0..999 {
            let n = m.alloc(node).unwrap();
            m.write_ref(tail, 0, Some(n));
            tail = n;
        }
        // Churn garbage to force several collections.
        let junk = ObjectShape::new(0, 30, 0);
        for _ in 0..60_000 {
            m.alloc(junk).unwrap();
        }
        assert!(gc.log().cycles.len() >= 2);
        // Walk the list: all 1000 nodes intact.
        let mut count = 1;
        let mut cur = head;
        while let Some(next) = m.read_ref(cur, 0) {
            count += 1;
            cur = next;
        }
        assert_eq!(count, 1000);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn baseline_stw_collects_too() {
        let mut c = GcConfig::stw_with_heap_bytes(4 << 20);
        c.stw_workers = 2;
        let gc = Gc::new(c);
        let mut m = gc.register_mutator();
        let keep = m.alloc(ObjectShape::new(1, 1, 0)).unwrap();
        m.root_push(Some(keep));
        for _ in 0..100_000 {
            m.alloc(ObjectShape::new(0, 30, 0)).unwrap();
        }
        let log = gc.log();
        assert!(!log.cycles.is_empty());
        assert!(log
            .cycles
            .iter()
            .all(|cy| cy.trigger == Some(Trigger::Baseline)));
        assert!(gc.heap().is_published(keep));
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn phase_observable_and_cycles_counted() {
        let gc = Gc::new(small_config());
        assert_eq!(gc.phase(), Phase::Idle);
        assert_eq!(gc.cycle(), 0);
        let mut m = gc.register_mutator();
        m.collect();
        assert_eq!(gc.phase(), Phase::Idle, "idle again after the pause");
        assert_eq!(gc.cycle(), 1);
        assert_eq!(gc.log().cycles[0].trigger, Some(Trigger::Explicit));
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn global_roots_retain_objects() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let obj = m.alloc(ObjectShape::new(0, 5, 42)).unwrap();
        let slot = gc.global_root_push(Some(obj));
        m.collect();
        assert_eq!(gc.global_root_get(slot), Some(obj));
        assert_eq!(gc.heap().header(obj).class_id, 42);
        // Cleared global root lets the object die on the next cycle.
        gc.global_root_set(slot, None);
        m.collect();
        assert!(!gc.heap().is_published(obj), "object reclaimed");
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn large_objects_round_trip_through_gc() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        // >= large_object_bytes (8 KiB default): 1200 data granules.
        let big = ObjectShape::new(2, 1200, 7);
        assert!(gc.heap().is_large(big));
        let a = m.alloc(big).unwrap();
        m.root_push(Some(a));
        m.write_data(a, 1199, 0xFEED);
        for _ in 0..20_000 {
            m.alloc(ObjectShape::new(0, 30, 0)).unwrap();
        }
        assert_eq!(m.read_data(a, 1199), 0xFEED);
        assert!(gc.heap().is_published(a));
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn tiny_packet_pool_still_correct_via_overflow() {
        // §4.3: when packets run out, overflow falls back to
        // mark-and-dirty-card; nothing may be lost.
        let mut cfg = small_config();
        cfg.pool = PoolConfig {
            packets: 4,
            capacity: 8,
        };
        let gc = Gc::new(cfg);
        let mut m = gc.register_mutator();
        let node = ObjectShape::new(2, 1, 0);
        let root = m.alloc(node).unwrap();
        m.root_push(Some(root));
        // A sizable tree forces overflow during tracing.
        let mut frontier = vec![root];
        for _ in 0..9 {
            let mut next = Vec::new();
            for &p in &frontier {
                for s in 0..2 {
                    next.push(m.alloc_into(p, s, node).unwrap());
                }
            }
            frontier = next;
        }
        for _ in 0..40_000 {
            m.alloc(ObjectShape::new(0, 30, 0)).unwrap();
        }
        // Count the tree: must be complete (2^10 - 1 nodes).
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for s in 0..2 {
                if let Some(c) = m.read_ref(n, s) {
                    stack.push(c);
                }
            }
        }
        assert_eq!(count, (1 << 10) - 1);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn cycle_stats_record_concurrent_work() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let keep = m.alloc(ObjectShape::new(1, 50, 0)).unwrap();
        m.root_push(Some(keep));
        let junk = ObjectShape::new(0, 30, 0);
        while gc.log().cycles.len() < 3 {
            for _ in 0..5_000 {
                m.alloc(junk).unwrap();
            }
        }
        let log = gc.log();
        // At least one concurrent (non-baseline) cycle with increments.
        assert!(log
            .cycles
            .iter()
            .any(|c| c.increments > 0 && c.concurrent_traced_bytes() > 0));
        for c in &log.cycles {
            assert!(c.pause_ms > 0.0);
            assert!(c.cycle >= 1);
        }
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn handshakes_counted_when_cards_cleaned_concurrently() {
        let mut cfg = GcConfig::with_heap_bytes(8 << 20);
        cfg.background_threads = 1;
        cfg.stw_workers = 2;
        cfg.tracing_rate = 4.0;
        let gc = Gc::new(cfg);
        let mut m = gc.register_mutator();
        // A mutated live set: ring of slots overwritten constantly, so
        // cards stay dirty during concurrent phases.
        let ring = m.alloc(ObjectShape::new(100, 0, 0)).unwrap();
        m.root_push(Some(ring));
        let junk = ObjectShape::new(0, 30, 0);
        let node = ObjectShape::new(0, 4, 0);
        let mut i = 0u32;
        while gc.log().cycles.len() < 4 {
            let n = m.alloc(node).unwrap();
            m.write_ref(ring, i % 100, Some(n));
            i += 1;
            for _ in 0..50 {
                m.alloc(junk).unwrap();
            }
        }
        let log = gc.log();
        let handshakes: u64 = log.cycles.iter().map(|c| c.handshakes).sum();
        let conc_cards: u64 = log.cycles.iter().map(|c| c.cards_cleaned_concurrent).sum();
        assert!(
            conc_cards == 0 || handshakes > 0,
            "concurrent cleaning implies handshakes: cards={conc_cards} hs={handshakes}"
        );
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn oom_reported_not_hung() {
        let gc = Gc::new(small_config());
        let mut m = gc.register_mutator();
        let shape = ObjectShape::new(1, 100, 0);
        let root = m.root_push(None);
        let mut last: Option<ObjectRef> = None;
        let mut oom = false;
        // Keep everything live via a chain rooted at slot 0: must OOM.
        for _ in 0..10_000 {
            match m.alloc(shape) {
                Ok(obj) => {
                    m.write_ref(obj, 0, last);
                    m.root_set(root, Some(obj));
                    last = Some(obj);
                }
                Err(GcError::OutOfMemory { .. }) => {
                    oom = true;
                    break;
                }
            }
        }
        assert!(oom, "a fully-live heap must report OOM");
        drop(m);
        gc.shutdown();
    }
}
