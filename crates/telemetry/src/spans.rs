//! The GC flight recorder: per-thread, lock-free rings of *completed*
//! spans (begin/end pairs) recorded through zero-allocation RAII guards.
//!
//! # Design
//!
//! A [`SpanRecorder`] owns up to [`MAX_TRACKS`] **tracks**. A track is
//! one timeline — normally one thread (a mutator, a GC scheduler
//! worker), plus one synthetic "gc coordinator" track for
//! cycle-level spans that outlive any single stack frame. Each track has
//! its own fixed-capacity [`SpanRing`]; when it wraps, the oldest spans
//! are overwritten, so the recorder is bounded-memory and safe to leave
//! **always on**.
//!
//! The rings use the same seqlock slot protocol as the event ring in
//! [`crate::ring`]: a writer claims a ticket with one `fetch_add`, marks
//! the slot odd, fills the payload with relaxed stores, and marks it even
//! with a release store; readers re-check the sequence word after copying
//! and discard torn or lapped slots. Crucially a slot holds a *complete*
//! span — begin and end timestamps are written together when the
//! [`SpanGuard`] drops — so a snapshot can never observe a torn or
//! unmatched begin/end pair by construction.
//!
//! Recording is zero-allocation: a guard is five words on the stack, and
//! its drop is one ticket claim plus six atomic stores. When recording is
//! disabled, creating a guard is one relaxed load and a branch.
//!
//! Threads register themselves lazily: the first span a thread records
//! against a recorder claims a track slot and names it after the thread
//! (`std::thread::current().name()`), so the GC scheduler's pooled
//! workers (`mcgc-sched-{i}`) each get a stable, readable
//! track with no explicit wiring. The registration is keyed by recorder
//! id, so several collectors in one process (common in tests) never share
//! a track.
//!
//! Consumers ([`crate::trace_export`]) snapshot the tracks into
//! Perfetto-loadable Chrome trace JSON and fold pause-window spans into
//! per-phase/per-worker postmortems.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of tracks (threads + the coordinator) per recorder.
pub const MAX_TRACKS: usize = 64;

/// Default spans retained per track before the oldest are overwritten.
pub const DEFAULT_TRACK_CAPACITY: usize = 2048;

/// Maximum retained counter points (heap-inspector samples et al.).
const COUNTER_CAPACITY: usize = 8192;

/// What a span measures. A **closed catalog**: `mcgc-lint` checks that
/// every `SpanKind::` reference in the tree names one of these variants,
/// and that the pause-phase code paths in the collector carry a guard for
/// each `Pause*` phase kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// One whole GC cycle, kickoff to pause end (coordinator track;
    /// arg = free bytes at kickoff).
    Cycle,
    /// One stop-the-world pause (leader track; arg = trigger code).
    Pause,
    /// Pause phase: retire mutator allocation caches + the packet
    /// watchdog (arg = packets reclaimed).
    PauseRetire,
    /// Watchdog fallback: flood of already-marked cards (nested inside
    /// [`SpanKind::PauseRetire`]).
    PauseFlood,
    /// Pause phase: final stop-the-world card cleaning (arg = cards).
    PauseCards,
    /// Pause phase: root rescanning (arg = stacks scanned).
    PauseRoots,
    /// Pause phase: re-clean of cards redirtied during the drain
    /// (arg = redirtied cards).
    PauseReclean,
    /// Pause phase: parallel packet drain (arg = drain round).
    PauseDrain,
    /// Pause phase: sweep (arg = 0 eager, 1 lazy-planned).
    PauseSweep,
    /// Pause phase: end-of-pause mark-bit pre-clear.
    PauseClear,
    /// Pause phase: accounting tail — stats, pacer feedback, heap
    /// inspection (arg = cycle number).
    PauseAccount,
    /// Leader-side run of one scheduler bucket, publish to drain
    /// (arg = bucket index).
    SchedBucket,
    /// One worker executing its slice of an open bucket (arg = items
    /// claimed).
    SchedJob,
    /// Leader spin-waiting for the open bucket's last executor to leave
    /// before the bucket is drained (arg = bucket index).
    SchedDrainWait,
    /// One mutator tracing increment (arg = bytes traced).
    MutatorIncrement,
    /// One background-thread tracing increment (arg = bytes traced).
    BackgroundIncrement,
    /// One §5.3 card-snapshot handshake (arg = 1 acked, 0 timed out).
    Handshake,
    /// One §4.3 termination check in a drain loop (arg = 1 complete).
    TerminationAttempt,
    /// A pacer kickoff decision that fired (arg = free bytes; the pacer
    /// inputs ride in adjacent counter points).
    KickoffDecision,
    /// One chunk claimed and swept by a parallel-sweep worker
    /// (arg = chunk index).
    SweepChunk,
    /// One chunk swept by the lazy (outside-the-pause) sweeper
    /// (arg = chunk index).
    LazySweepChunk,
    /// An allocation-cache refill satisfied from a shard's own bins
    /// (arg = granules handed out).
    ShardRefill,
    /// A refill that had to steal from sibling shards (arg = shard
    /// stolen from).
    ShardSteal,
    /// A refill that fell through to the wilderness list (arg = granules
    /// handed out).
    WildernessRefill,
    /// One unswept chunk claimed and swept by an allocation-cache refill
    /// that found its stripe's bins empty (sweep-on-refill; arg = chunk
    /// index).
    RefillSweepChunk,
    /// One unswept chunk drained by the background sweeper soaking idle
    /// cycles (arg = chunk index).
    BgSweepChunk,
}

impl SpanKind {
    /// All variants in discriminant order (index == `as u8`).
    pub const ALL: [SpanKind; 26] = [
        SpanKind::Cycle,
        SpanKind::Pause,
        SpanKind::PauseRetire,
        SpanKind::PauseFlood,
        SpanKind::PauseCards,
        SpanKind::PauseRoots,
        SpanKind::PauseReclean,
        SpanKind::PauseDrain,
        SpanKind::PauseSweep,
        SpanKind::PauseClear,
        SpanKind::PauseAccount,
        SpanKind::SchedBucket,
        SpanKind::SchedJob,
        SpanKind::SchedDrainWait,
        SpanKind::MutatorIncrement,
        SpanKind::BackgroundIncrement,
        SpanKind::Handshake,
        SpanKind::TerminationAttempt,
        SpanKind::KickoffDecision,
        SpanKind::SweepChunk,
        SpanKind::LazySweepChunk,
        SpanKind::ShardRefill,
        SpanKind::ShardSteal,
        SpanKind::WildernessRefill,
        SpanKind::RefillSweepChunk,
        SpanKind::BgSweepChunk,
    ];

    /// The top-level pause phases: spans of these kinds tile the pause
    /// wall-clock end to end (the postmortem's coverage metric is the
    /// tiled fraction). [`SpanKind::PauseFlood`] is *nested* inside
    /// retire and deliberately absent.
    pub const PAUSE_PHASES: [SpanKind; 8] = [
        SpanKind::PauseRetire,
        SpanKind::PauseCards,
        SpanKind::PauseRoots,
        SpanKind::PauseDrain,
        SpanKind::PauseReclean,
        SpanKind::PauseSweep,
        SpanKind::PauseClear,
        SpanKind::PauseAccount,
    ];

    pub fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }

    /// Stable dotted display name (used as the trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Cycle => "gc.cycle",
            SpanKind::Pause => "gc.pause",
            SpanKind::PauseRetire => "pause.retire",
            SpanKind::PauseFlood => "pause.flood",
            SpanKind::PauseCards => "pause.cards",
            SpanKind::PauseRoots => "pause.roots",
            SpanKind::PauseReclean => "pause.reclean",
            SpanKind::PauseDrain => "pause.drain",
            SpanKind::PauseSweep => "pause.sweep",
            SpanKind::PauseClear => "pause.clear",
            SpanKind::PauseAccount => "pause.account",
            SpanKind::SchedBucket => "sched.bucket",
            SpanKind::SchedJob => "sched.job",
            SpanKind::SchedDrainWait => "sched.drain_wait",
            SpanKind::MutatorIncrement => "trace.mutator_increment",
            SpanKind::BackgroundIncrement => "trace.background_increment",
            SpanKind::Handshake => "trace.handshake",
            SpanKind::TerminationAttempt => "trace.termination_attempt",
            SpanKind::KickoffDecision => "pacer.kickoff",
            SpanKind::SweepChunk => "sweep.chunk",
            SpanKind::LazySweepChunk => "sweep.lazy_chunk",
            SpanKind::ShardRefill => "shard.refill",
            SpanKind::ShardSteal => "shard.steal",
            SpanKind::WildernessRefill => "shard.wilderness_refill",
            SpanKind::RefillSweepChunk => "sweep.refill_chunk",
            SpanKind::BgSweepChunk => "sweep.bg_chunk",
        }
    }
}

/// A completed span copied out of a ring.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Nanoseconds since the recorder epoch.
    pub begin_ns: u64,
    pub end_ns: u64,
    /// GC cycle the span belongs to (0 before the first cycle).
    pub cycle: u32,
    pub kind: SpanKind,
    /// Kind-dependent payload; see [`SpanKind`].
    pub arg: u64,
}

impl Span {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }

    /// Length of the overlap of this span with `[lo, hi)`.
    pub fn overlap_ns(&self, lo: u64, hi: u64) -> u64 {
        self.end_ns.min(hi).saturating_sub(self.begin_ns.max(lo))
    }
}

struct SpanSlot {
    /// `2 * ticket + 1` mid-write, `2 * ticket + 2` complete (the same
    /// seqlock protocol as [`crate::ring::EventRing`]).
    seq: AtomicU64,
    begin_ns: AtomicU64,
    end_ns: AtomicU64,
    /// `cycle << 32 | kind` (kind in the low byte, room to grow).
    meta: AtomicU64,
    arg: AtomicU64,
}

/// A fixed-capacity, lock-free ring of completed spans (one per track).
pub struct SpanRing {
    slots: Box<[SpanSlot]>,
    cursor: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding `capacity` spans (rounded up to a power of
    /// two, minimum 8) before the oldest are overwritten.
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.next_power_of_two().max(8);
        let slots = (0..cap)
            .map(|_| SpanSlot {
                seq: AtomicU64::new(0),
                begin_ns: AtomicU64::new(0),
                end_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanRing {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (monotone; exceeds `capacity` once the
    /// ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed) // MODEL: seqlock_model (monotone ticket)
    }

    /// Records one completed span. Wait-free: one `fetch_add`, five
    /// relaxed stores, one release store, and one (TSO-free) release
    /// fence. A ring has a single writer — its owning track's thread —
    /// which is what makes the odd/even slot protocol sufficient; see
    /// `seqlock_model` in `crates/check` for the exhaustively checked
    /// protocol and the mutations that break it.
    pub fn record(&self, sp: &Span) {
        // MODEL: seqlock_model — the cursor `fetch_add` is the ticket
        // claim; `TicketReuse` (never advancing it) breaks sequence
        // monotonicity.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        // MODEL: seqlock_model — the odd store opens the slot; the
        // fence below orders it before the payload stores.
        slot.seq.store(ticket * 2 + 1, Ordering::Relaxed);
        // Without this fence the payload stores may become visible
        // before the odd seq store, and a reader can double-validate a
        // stale even seq around a torn payload
        // (SeqlockMutation::SkipBeginFence — the bug this ring shipped
        // with until the model caught it).
        mcgc_membar::seqlock_write_fence();
        // MODEL: seqlock_model — payload stores; ordered after the odd
        // seq store by the fence above, before the even one below by
        // the release store.
        slot.begin_ns.store(sp.begin_ns, Ordering::Relaxed);
        slot.end_ns.store(sp.end_ns, Ordering::Relaxed);
        slot.meta.store(
            (sp.cycle as u64) << 32 | sp.kind as u8 as u64,
            Ordering::Relaxed,
        );
        slot.arg.store(sp.arg, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    fn read_slot(&self, ticket: u64) -> Option<Span> {
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        let want = ticket * 2 + 2;
        if slot.seq.load(Ordering::Acquire) != want {
            return None;
        }
        // seqlock-read: begin — the speculative copy window, validated
        // by the re-check below; mcgc-lint enforces that no store or
        // early return sneaks in between the markers.
        // MODEL: seqlock_model — relaxed payload loads, valid only if
        // the revalidation load still observes `want`.
        let begin_ns = slot.begin_ns.load(Ordering::Relaxed);
        let end_ns = slot.end_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let arg = slot.arg.load(Ordering::Relaxed);
        // seqlock-read: end
        // Order the payload loads before the revalidation (Boehm's
        // seqlock recipe): without it, an overwriter's payload could be
        // visible while its odd seq store is not.
        mcgc_membar::seqlock_read_fence();
        if slot.seq.load(Ordering::Acquire) != want {
            return None; // lapped mid-read
        }
        let kind = SpanKind::from_u8((meta & 0xFF) as u8)?;
        Some(Span {
            begin_ns,
            end_ns,
            cycle: (meta >> 32) as u32,
            kind,
            arg,
        })
    }

    /// Copies out the retained spans, oldest first by ticket, then sorted
    /// by begin timestamp. Slots mid-write or lapped during the read are
    /// skipped; a returned span is always one some writer fully recorded.
    pub fn snapshot(&self) -> Vec<Span> {
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(self.slots.len() as u64);
        let mut spans: Vec<Span> = (start..end).filter_map(|t| self.read_slot(t)).collect();
        spans.sort_by_key(|s| s.begin_ns);
        spans
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Index of a track inside its recorder (also the exporter's `tid - 1`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TrackId(pub u16);

struct Track {
    name: String,
    ring: SpanRing,
}

/// One timestamped sample of a named counter series (heap-inspector
/// occupancy, pacer inputs, ...), exported as a Perfetto counter track.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterPoint {
    pub ts_ns: u64,
    pub name: String,
    pub value: f64,
}

/// A snapshot of one track: its name plus the retained spans.
#[derive(Debug)]
pub struct TrackSnapshot {
    pub id: TrackId,
    pub name: String,
    pub spans: Vec<Span>,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (recorder id, track) pairs for every recorder this thread has
    /// recorded against. Tiny (one entry per live collector), scanned
    /// linearly.
    static THREAD_TRACKS: RefCell<Vec<(u64, TrackId)>> = const { RefCell::new(Vec::new()) };
}

/// The flight recorder. See the module docs for the architecture.
pub struct SpanRecorder {
    /// Process-unique id keying the thread-local track registrations.
    id: u64,
    epoch: Instant,
    enabled: AtomicBool,
    /// Current GC cycle, stamped into spans at guard construction.
    cycle: AtomicU32,
    track_capacity: usize,
    next_track: AtomicUsize,
    tracks: Box<[OnceLock<Track>]>,
    counters: Mutex<std::collections::VecDeque<CounterPoint>>,
}

impl SpanRecorder {
    /// Creates a recorder whose per-track rings retain `track_capacity`
    /// spans, timestamping against `epoch` (share the owning telemetry
    /// hub's epoch so span and event timestamps line up).
    pub fn with_epoch(epoch: Instant, track_capacity: usize) -> SpanRecorder {
        SpanRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            epoch,
            enabled: AtomicBool::new(true),
            cycle: AtomicU32::new(0),
            track_capacity,
            next_track: AtomicUsize::new(0),
            tracks: (0..MAX_TRACKS).map(|_| OnceLock::new()).collect(),
            counters: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    pub fn new(track_capacity: usize) -> SpanRecorder {
        SpanRecorder::with_epoch(Instant::now(), track_capacity)
    }

    /// Nanoseconds since the recorder epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Whether recording is on (it is by default; the rings are bounded,
    /// so always-on costs fixed memory). When off, every guard
    /// constructor is one relaxed load and a branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Stamps the cycle number recorded into subsequently created spans.
    pub fn set_cycle(&self, cycle: u32) {
        self.cycle.store(cycle, Ordering::Relaxed);
    }

    pub fn current_cycle(&self) -> u32 {
        self.cycle.load(Ordering::Relaxed)
    }

    fn claim_track(&self, name: String) -> Option<TrackId> {
        loop {
            let idx = self.next_track.load(Ordering::Relaxed);
            if idx >= self.tracks.len() {
                return None; // out of track slots: record nothing
            }
            if self
                .next_track
                .compare_exchange(idx, idx + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let ok = self.tracks[idx]
                .set(Track {
                    name,
                    ring: SpanRing::new(self.track_capacity),
                })
                .is_ok();
            debug_assert!(ok, "slot {idx} claimed twice");
            return Some(TrackId(idx as u16));
        }
    }

    /// Registers an explicitly named track (the collector's synthetic
    /// "gc coordinator" timeline). Returns `None` if all [`MAX_TRACKS`]
    /// slots are taken.
    pub fn named_track(&self, name: &str) -> Option<TrackId> {
        self.claim_track(name.to_string())
    }

    /// The calling thread's track for this recorder, registering it
    /// (named after the thread) on first use.
    pub fn current_track(&self) -> Option<TrackId> {
        THREAD_TRACKS.with(|tls| {
            let mut v = tls.borrow_mut();
            if let Some((_, t)) = v.iter().find(|(id, _)| *id == self.id) {
                return Some(*t);
            }
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", self.next_track.load(Ordering::Relaxed)));
            let t = self.claim_track(name)?;
            v.push((self.id, t));
            Some(t)
        })
    }

    /// Opens a span on the calling thread's track, beginning now. The
    /// span is recorded when the guard drops. Zero-allocation after the
    /// thread's one-time track registration.
    #[inline]
    pub fn span(&self, kind: SpanKind, arg: u64) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        match self.current_track() {
            Some(track) => self.span_on(track, kind, arg),
            None => SpanGuard::inert(),
        }
    }

    /// Opens a span on an explicit track (coordinator-track spans).
    #[inline]
    pub fn span_on(&self, track: TrackId, kind: SpanKind, arg: u64) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        SpanGuard {
            rec: Some((self, track)),
            kind,
            cycle: self.current_cycle(),
            begin_ns: self.now_ns(),
            arg,
        }
    }

    /// Records a completed span with explicit timestamps (cycle-level
    /// spans whose begin predates the recording stack frame).
    pub fn record_span(
        &self,
        track: TrackId,
        kind: SpanKind,
        begin_ns: u64,
        end_ns: u64,
        arg: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record_on(
            track,
            Span {
                begin_ns,
                end_ns,
                cycle: self.current_cycle(),
                kind,
                arg,
            },
        );
    }

    fn record_on(&self, track: TrackId, sp: Span) {
        if let Some(t) = self.tracks.get(track.0 as usize).and_then(OnceLock::get) {
            t.ring.record(&sp);
        }
    }

    /// Appends one counter sample timestamped now (bounded: the oldest
    /// points are dropped past [`COUNTER_CAPACITY`]).
    pub fn record_counter(&self, name: &str, value: f64) {
        self.record_counter_at(self.now_ns(), name, value);
    }

    /// Appends one counter sample with an explicit timestamp (snapshots
    /// attributed to a cycle boundary rather than the sampling instant).
    pub fn record_counter_at(&self, ts_ns: u64, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let point = CounterPoint {
            ts_ns,
            name: name.to_string(),
            value,
        };
        let mut q = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= COUNTER_CAPACITY {
            q.pop_front();
        }
        q.push_back(point);
    }

    /// The retained counter points, oldest first.
    pub fn counter_points(&self) -> Vec<CounterPoint> {
        let q = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        q.iter().cloned().collect()
    }

    /// Snapshots every registered track (name + retained spans).
    pub fn tracks(&self) -> Vec<TrackSnapshot> {
        self.tracks
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let t = slot.get()?;
                Some(TrackSnapshot {
                    id: TrackId(i as u16),
                    name: t.name.clone(),
                    spans: t.ring.snapshot(),
                })
            })
            .collect()
    }

    /// Every retained span across all tracks, tagged with its track id,
    /// sorted by begin timestamp.
    pub fn all_spans(&self) -> Vec<(TrackId, Span)> {
        let mut out: Vec<(TrackId, Span)> = Vec::new();
        for t in self.tracks() {
            out.extend(t.spans.into_iter().map(|s| (t.id, s)));
        }
        out.sort_by_key(|(_, s)| s.begin_ns);
        out
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("tracks", &self.next_track.load(Ordering::Relaxed))
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII span guard: records `[construction, drop]` as one completed span
/// on drop. Inert guards (recorder disabled, track slots exhausted) cost
/// nothing beyond the constructor's branch.
#[must_use = "a span guard measures its own lifetime; bind it with `let _span = ...`"]
pub struct SpanGuard<'r> {
    rec: Option<(&'r SpanRecorder, TrackId)>,
    kind: SpanKind,
    cycle: u32,
    begin_ns: u64,
    arg: u64,
}

impl SpanGuard<'_> {
    fn inert() -> SpanGuard<'static> {
        SpanGuard {
            rec: None,
            kind: SpanKind::Cycle,
            cycle: 0,
            begin_ns: 0,
            arg: 0,
        }
    }

    /// Replaces the span's payload (e.g. with a count known only at the
    /// end of the measured region).
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// Re-kinds the span (for regions whose classification — refill vs.
    /// steal vs. wilderness — is only known at the end).
    #[inline]
    pub fn set_kind(&mut self, kind: SpanKind) {
        self.kind = kind;
    }

    /// Accumulates into the span's payload.
    #[inline]
    pub fn add_arg(&mut self, n: u64) {
        self.arg += n;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((rec, track)) = self.rec {
            rec.record_on(
                track,
                Span {
                    begin_ns: self.begin_ns,
                    end_ns: rec.now_ns(),
                    cycle: self.cycle,
                    kind: self.kind,
                    arg: self.arg,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn kind_codec_roundtrip() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8 as usize, i);
            assert_eq!(SpanKind::from_u8(*k as u8), Some(*k));
        }
        assert_eq!(SpanKind::from_u8(SpanKind::ALL.len() as u8), None);
        // Display names are unique (they key exporter tracks).
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
    }

    #[test]
    fn guard_records_complete_span() {
        let r = SpanRecorder::new(64);
        {
            let mut g = r.span(SpanKind::PauseCards, 0);
            g.set_arg(17);
        }
        let tracks = r.tracks();
        assert_eq!(tracks.len(), 1);
        let s = &tracks[0].spans[0];
        assert_eq!(s.kind, SpanKind::PauseCards);
        assert_eq!(s.arg, 17);
        assert!(s.end_ns >= s.begin_ns);
    }

    #[test]
    fn disabled_records_nothing() {
        let r = SpanRecorder::new(64);
        r.set_enabled(false);
        drop(r.span(SpanKind::Pause, 0));
        r.record_counter("x", 1.0);
        assert!(r.tracks().is_empty());
        assert!(r.counter_points().is_empty());
    }

    #[test]
    fn named_and_thread_tracks_are_separate() {
        let r = SpanRecorder::new(64);
        let coord = r.named_track("gc coordinator").unwrap();
        r.record_span(coord, SpanKind::Cycle, 10, 90, 0);
        drop(r.span(SpanKind::MutatorIncrement, 5));
        let tracks = r.tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].name, "gc coordinator");
        assert_eq!(tracks[0].spans[0].kind, SpanKind::Cycle);
        assert_eq!(tracks[1].spans[0].kind, SpanKind::MutatorIncrement);
    }

    #[test]
    fn two_recorders_do_not_share_thread_tracks() {
        let a = SpanRecorder::new(64);
        let b = SpanRecorder::new(64);
        drop(a.span(SpanKind::Pause, 1));
        drop(b.span(SpanKind::Cycle, 2));
        assert_eq!(a.tracks().len(), 1);
        assert_eq!(b.tracks().len(), 1);
        assert_eq!(a.tracks()[0].spans[0].kind, SpanKind::Pause);
        assert_eq!(b.tracks()[0].spans[0].kind, SpanKind::Cycle);
    }

    #[test]
    fn cycle_stamped_at_guard_construction() {
        let r = SpanRecorder::new(64);
        r.set_cycle(7);
        let g = r.span(SpanKind::PauseDrain, 0);
        r.set_cycle(8);
        drop(g);
        assert_eq!(r.tracks()[0].spans[0].cycle, 7);
    }

    #[test]
    fn counter_points_bounded() {
        let r = SpanRecorder::new(8);
        for i in 0..(COUNTER_CAPACITY + 10) {
            r.record_counter("heap_occupancy", i as f64);
        }
        let pts = r.counter_points();
        assert_eq!(pts.len(), COUNTER_CAPACITY);
        assert_eq!(pts.last().unwrap().value, (COUNTER_CAPACITY + 9) as f64);
    }

    /// Satellite: multi-thread stress — every snapshotted span must be a
    /// well-formed begin/end pair some thread actually completed, never a
    /// torn or interleaved one, even while the rings wrap.
    #[test]
    fn stress_no_torn_or_interleaved_pairs() {
        let r = Arc::new(SpanRecorder::new(64));
        let threads = 4;
        // Interpreted execution is ~1000x slower; keep the ring-wrapping
        // shape but shrink the volume under Miri.
        let per_thread = if cfg!(miri) { 300u64 } else { 5_000u64 };
        let mut handles = Vec::new();
        for w in 0..threads {
            let r = Arc::clone(&r);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("stress-{w}"))
                    .spawn(move || {
                        for i in 0..per_thread {
                            // Nested guards: outer carries w<<32|i, inner
                            // mirrors it with the kind flipped, so a reader
                            // can verify payload integrity per span.
                            let outer = r.span(SpanKind::SchedJob, (w as u64) << 32 | i);
                            let inner = r.span(SpanKind::SweepChunk, (w as u64) << 32 | i);
                            drop(inner);
                            drop(outer);
                        }
                    })
                    .unwrap(),
            );
        }
        let reader = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    for t in r.tracks() {
                        for s in &t.spans {
                            assert!(s.end_ns >= s.begin_ns, "torn span {s:?}");
                            assert!(
                                s.kind == SpanKind::SchedJob || s.kind == SpanKind::SweepChunk,
                                "foreign kind {s:?}"
                            );
                            let w = s.arg >> 32;
                            let i = s.arg & 0xFFFF_FFFF;
                            assert!(w < threads as u64 && i < per_thread, "payload {s:?}");
                            seen += 1;
                        }
                    }
                    std::thread::yield_now();
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0);
        // Quiescent: per-track nesting is intact — every inner span lies
        // within its outer partner's window.
        for t in r.tracks() {
            let outers: Vec<&Span> = t
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::SchedJob)
                .collect();
            for inner in t.spans.iter().filter(|s| s.kind == SpanKind::SweepChunk) {
                assert!(
                    outers.iter().any(|o| o.arg == inner.arg
                        && o.begin_ns <= inner.begin_ns
                        && o.end_ns >= inner.end_ns),
                    "inner span {inner:?} escaped its outer guard"
                );
            }
        }
    }
}
