//! A small counter/gauge registry with text and JSON exporters.
//!
//! Hot paths never touch the registry map: they hold an `Arc<Counter>` /
//! `Arc<Gauge>` obtained once at startup and update it with a single
//! relaxed RMW. The map itself (name -> metric) is only locked on
//! registration and export.
//!
//! Export formats:
//!
//! - [`MetricsRegistry::render_text`]: one `name value` pair per line,
//!   sorted by name (Prometheus exposition style, no type annotations).
//!   Counters print as integers, gauges with six decimal places.
//! - [`MetricsRegistry::render_json`]: a single flat JSON object,
//!   `{"name": value, ...}`, sorted by name. Non-finite gauge values are
//!   rendered as `null` (JSON has no NaN/Infinity literals).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
}

/// The name -> metric map. Cheap to share (`Arc` the registry itself or
/// the individual metrics, as convenient).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Gauge(_) => panic!("metric {name:?} already registered as a gauge"),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            Metric::Counter(_) => panic!("metric {name:?} already registered as a counter"),
        }
    }

    /// Point-in-time values of every metric, sorted by name. Counters are
    /// widened to `f64` (exact below 2^53, far beyond realistic counts).
    pub fn sample(&self) -> Vec<(String, f64)> {
        self.lock()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => c.get() as f64,
                    Metric::Gauge(g) => g.get(),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// `name value` per line, sorted by name.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, m) in self.lock().iter() {
            match m {
                Metric::Counter(c) => writeln!(out, "{} {}", name, c.get()).unwrap(),
                Metric::Gauge(g) => writeln!(out, "{} {:.6}", name, g.get()).unwrap(),
            }
        }
        out
    }

    /// A flat JSON object `{"name": value, ...}`, sorted by name.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let map = self.lock();
        for (i, (name, m)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            // Metric names are plain identifiers; escape the two JSON
            // specials anyway so a weird name can't corrupt the document.
            for ch in name.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            match m {
                Metric::Counter(c) => out.push_str(&c.get().to_string()),
                Metric::Gauge(g) => {
                    let v = g.get();
                    if v.is_finite() {
                        out.push_str(&format!("{v:.6}"));
                    } else {
                        out.push_str("null");
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("mcgc_cycles_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("mcgc_cycles_total").get(), 5);

        let g = r.gauge("mcgc_heap_occupancy");
        g.set(0.625);
        assert!((r.gauge("mcgc_heap_occupancy").get() - 0.625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn text_export_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_count").add(2);
        r.gauge("a_gauge").set(1.5);
        assert_eq!(r.render_text(), "a_gauge 1.500000\nb_count 2\n");
    }

    #[test]
    fn json_export() {
        let r = MetricsRegistry::new();
        r.counter("cycles").add(3);
        r.gauge("occ").set(0.5);
        r.gauge("bad").set(f64::INFINITY);
        assert_eq!(r.render_json(), r#"{"bad":null,"cycles":3,"occ":0.500000}"#);
    }

    #[test]
    fn sample_reflects_updates() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        c.add(7);
        let s = r.sample();
        assert_eq!(s, vec![("n".to_string(), 7.0)]);
    }
}
