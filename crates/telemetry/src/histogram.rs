//! Log-scaled (power-of-two bucket) histograms for pause and increment
//! latencies, plus an MMU-style minimum-mutator-utilization tracker.
//!
//! Recording is wait-free (three relaxed RMWs and a `fetch_max`);
//! querying walks the 64 buckets, so percentiles are available mid-run at
//! negligible cost. A value `v` lands in bucket `floor(log2(v))`
//! (bucket 0 holds 0 and 1), giving a worst-case quantile error of 2x —
//! plenty for "is p99 a millisecond or ten" questions, in exchange for a
//! fixed 64-word footprint and no locking.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// Index of the bucket holding `v`: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A concurrent log2-bucket histogram of `u64` samples.
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time summary of a [`LogHistogram`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub const fn new() -> LogHistogram {
        // `[const { ... }; N]` inline-const array repetition needs 1.79;
        // build explicitly to keep the MSRV conservative.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LogHistogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The smallest bucket upper bound below which at least `q` (in
    /// `[0, 1]`) of the samples fall, clamped to the observed maximum.
    /// Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
        }
    }

    /// Resets every bucket and aggregate to zero. Not atomic with respect
    /// to concurrent `record`s; intended for between-run reuse.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// Tracks recent stop-the-world intervals and answers MMU-style
/// mutator-utilization queries: over the trailing window of length `w`,
/// what fraction of wall time did mutators get to run?
///
/// Intervals are kept in a bounded buffer under a mutex — pauses are rare
/// (tens per second at worst), so this is nowhere near a hot path.
#[derive(Debug, Default)]
pub struct UtilizationTracker {
    pauses: std::sync::Mutex<std::collections::VecDeque<(u64, u64)>>,
}

const MAX_TRACKED_PAUSES: usize = 4096;

impl UtilizationTracker {
    pub fn new() -> UtilizationTracker {
        UtilizationTracker::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::VecDeque<(u64, u64)>> {
        self.pauses.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one pause `[start_ns, end_ns]` (epoch-relative).
    pub fn record_pause(&self, start_ns: u64, end_ns: u64) {
        let mut q = self.lock();
        if q.len() == MAX_TRACKED_PAUSES {
            q.pop_front();
        }
        q.push_back((start_ns, end_ns.max(start_ns)));
    }

    /// Mutator utilization over the single trailing window
    /// `[now_ns - window_ns, now_ns]`: `1 - pause_time / window`.
    pub fn utilization(&self, now_ns: u64, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 1.0;
        }
        let lo = now_ns.saturating_sub(window_ns);
        let mut paused = 0u64;
        for &(s, e) in self.lock().iter() {
            let s = s.max(lo);
            let e = e.min(now_ns);
            if e > s {
                paused += e - s;
            }
        }
        (1.0 - paused as f64 / window_ns as f64).max(0.0)
    }

    /// Minimum mutator utilization: the worst `utilization` over any
    /// window of length `window_ns` ending at a recorded pause boundary
    /// or at `now_ns`. (Checking windows ending at pause ends is
    /// sufficient: utilization is locally minimized there.)
    pub fn minimum_utilization(&self, now_ns: u64, window_ns: u64) -> f64 {
        let ends: Vec<u64> = {
            let q = self.lock();
            q.iter().map(|&(_, e)| e).collect()
        };
        let mut worst = self.utilization(now_ns, window_ns);
        for e in ends {
            if e <= now_ns {
                worst = worst.min(self.utilization(e, window_ns));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Satellite (c): exact boundary behaviour of the log2 buckets.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..63 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper of {i}");
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let h = LogHistogram::new();
        // 90 small samples (bucket 3: 8..=15) and 10 large (bucket 10).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p50, bucket_upper_bound(bucket_index(10)));
        assert_eq!(s.p90, bucket_upper_bound(bucket_index(10)));
        // p99 falls in the large bucket, clamped to the observed max.
        assert_eq!(s.p99, 1000);
        assert!((s.mean() - (90.0 * 10.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let h = LogHistogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantile not monotone at {q}");
            last = v;
        }
        assert_eq!(h.value_at_quantile(1.0), h.max());
    }

    #[test]
    fn clear_resets() {
        let h = LogHistogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn utilization_windows() {
        let u = UtilizationTracker::new();
        // 10ms pause from t=10ms to t=20ms.
        u.record_pause(10_000_000, 20_000_000);
        // Over the 100ms window ending at t=100ms: 10% paused.
        let got = u.utilization(100_000_000, 100_000_000);
        assert!((got - 0.9).abs() < 1e-9, "{got}");
        // A 10ms window ending right at the pause end: fully paused.
        let got = u.utilization(20_000_000, 10_000_000);
        assert!(got.abs() < 1e-9, "{got}");
        // MMU over 10ms windows must find that worst case.
        let mmu = u.minimum_utilization(100_000_000, 10_000_000);
        assert!(mmu.abs() < 1e-9, "{mmu}");
        // MMU over 40ms windows: worst is 10/40 paused.
        let mmu = u.minimum_utilization(100_000_000, 40_000_000);
        assert!((mmu - 0.75).abs() < 1e-9, "{mmu}");
    }
}
