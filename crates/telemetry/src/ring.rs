//! A fixed-capacity, lock-free ring buffer of GC phase events.
//!
//! Writers claim a slot by a single `fetch_add` on a global cursor and
//! fill it with relaxed stores; a per-slot sequence word (seqlock style)
//! lets readers detect slots that are mid-write or have been lapped.
//! The ring never blocks and never allocates after construction: when it
//! wraps, the oldest events are overwritten. All slot fields are atomics,
//! so concurrent read/write is torn-free word by word and a stale read is
//! detected by the sequence check rather than being undefined behaviour.
//!
//! Writers that produce several events for one logical step (e.g. the
//! per-cycle statistics batch emitted at the end of a pause) should use
//! [`EventRing::publish_batch`], which claims the whole range with one
//! cursor RMW so the batch stays contiguous in ticket order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Discriminant for the per-cycle statistic events. Each variant mirrors
/// one field of the collector's `CycleStats`; the event's `arg` carries
/// the raw value (`f64::to_bits` for floating-point fields) so a log
/// rebuilt from the stream is bit-for-bit identical to direct accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StatField {
    /// Trigger code: 0 alloc-failure, 1 concurrent-done, 2 baseline,
    /// 3 explicit, `u64::MAX` unknown.
    Trigger,
    /// Modelled pause cost in ms (f64 bits).
    PauseMs,
    /// Modelled mark cost in ms (f64 bits).
    MarkMs,
    /// Modelled sweep cost in ms (f64 bits).
    SweepMs,
    /// Modelled card-scan cost in ms (f64 bits).
    CardMs,
    /// Modelled root-scan cost in ms (f64 bits).
    RootMs,
    /// Measured wall pause in ns.
    PauseWallNs,
    /// Wall time spent in the concurrent phase, ns.
    ConcurrentWallNs,
    /// Wall time from the previous cycle's end to kickoff, ns.
    PreConcurrentWallNs,
    /// Bytes traced by mutators during the concurrent phase.
    TracedMutator,
    /// Bytes traced by background threads.
    TracedBackground,
    /// Bytes traced inside the pause.
    TracedStw,
    /// Bytes allocated during the concurrent phase.
    AllocDuringConcurrent,
    /// Bytes allocated during the pre-concurrent phase.
    AllocPreConcurrent,
    /// Cards cleaned concurrently.
    CardsCleanedConcurrent,
    /// Cards cleaned in the pause.
    CardsCleanedStw,
    /// Cards the halted concurrent cleaner never reached.
    CardsLeft,
    /// Card-table handshakes performed.
    Handshakes,
    /// Free bytes when the pause began.
    FreeAtStwStart,
    /// Live bytes after sweep.
    LiveAfterBytes,
    /// Live objects after sweep.
    LiveAfterObjects,
    /// Free bytes after sweep.
    FreeAfterBytes,
    /// Heap occupancy after sweep (f64 bits).
    OccupancyAfter,
    /// Mutator tracing increments run this cycle.
    Increments,
    /// Sum of per-increment tracing factors (f64 bits).
    TracingFactorSum,
    /// Sum of squared per-increment tracing factors (f64 bits).
    TracingFactorSqSum,
    /// Packet-pool CAS operations this cycle.
    CasOps,
    /// Mark-stack overflows (packet-pool exhaustion events).
    Overflows,
    /// Objects pushed through the deferred sub-pool.
    DeferredObjects,
    /// High-water mark of packets in use.
    PacketsInUseWatermark,
    /// High-water mark of entries queued in packets.
    PacketEntriesWatermark,
    /// Measured wall time of the pause's final card cleaning (incl.
    /// redirty/re-clean passes), ns.
    CardsWallNs,
    /// Measured wall time of the pause's root rescanning, ns.
    RootsWallNs,
    /// Measured wall time of the pause's parallel packet drain, ns.
    DrainWallNs,
    /// Measured wall time of the pause's sweep phase, ns.
    SweepWallNs,
    /// Measured wall time of the end-of-pause mark-bit pre-clear, ns.
    ClearWallNs,
    /// Measured wall time of the pre-pause straggler fence that drained
    /// the previous sweep epoch's unswept chunks, ns.
    StragglerWallNs,
    /// Chunks the straggler fence had to finish (unswept when the next
    /// cycle's pause was requested).
    StragglerChunks,
}

impl StatField {
    /// All variants in discriminant order (index == `as u8`).
    pub const ALL: [StatField; 38] = [
        StatField::Trigger,
        StatField::PauseMs,
        StatField::MarkMs,
        StatField::SweepMs,
        StatField::CardMs,
        StatField::RootMs,
        StatField::PauseWallNs,
        StatField::ConcurrentWallNs,
        StatField::PreConcurrentWallNs,
        StatField::TracedMutator,
        StatField::TracedBackground,
        StatField::TracedStw,
        StatField::AllocDuringConcurrent,
        StatField::AllocPreConcurrent,
        StatField::CardsCleanedConcurrent,
        StatField::CardsCleanedStw,
        StatField::CardsLeft,
        StatField::Handshakes,
        StatField::FreeAtStwStart,
        StatField::LiveAfterBytes,
        StatField::LiveAfterObjects,
        StatField::FreeAfterBytes,
        StatField::OccupancyAfter,
        StatField::Increments,
        StatField::TracingFactorSum,
        StatField::TracingFactorSqSum,
        StatField::CasOps,
        StatField::Overflows,
        StatField::DeferredObjects,
        StatField::PacketsInUseWatermark,
        StatField::PacketEntriesWatermark,
        StatField::CardsWallNs,
        StatField::RootsWallNs,
        StatField::DrainWallNs,
        StatField::SweepWallNs,
        StatField::ClearWallNs,
        StatField::StragglerWallNs,
        StatField::StragglerChunks,
    ];

    pub fn from_u8(v: u8) -> Option<StatField> {
        StatField::ALL.get(v as usize).copied()
    }
}

/// What happened. Phase-transition kinds carry a context-dependent `arg`
/// (documented per variant); `CycleStat` carries one `CycleStats` field.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A concurrent cycle kicked off (arg = free bytes at kickoff).
    Kickoff,
    /// The concurrent phase ended (arg = trigger code as in
    /// [`StatField::Trigger`]; 0 means the phase was halted early by an
    /// allocation failure).
    ConcurrentEnd,
    /// One card-cleaning handshake with the mutators (arg = cards cleaned
    /// in this quantum).
    Handshake,
    /// The world stopped (arg = trigger code).
    StwStart,
    /// The world resumed (arg = measured wall pause in ns).
    StwEnd,
    /// Sweep began inside the pause (arg = 0 eager, 1 lazy).
    SweepStart,
    /// Sweep finished or was planned for lazy retirement (arg = live
    /// objects counted).
    SweepEnd,
    /// A completed lazy-sweep plan was retired outside the pause (arg =
    /// free bytes after retirement).
    LazySweepRetired,
    /// A mutator tracing increment completed (arg = bytes traced).
    MutatorIncrement,
    /// A background-thread tracing quantum completed (arg = bytes traced).
    BackgroundIncrement,
    /// End of a cycle's stat batch; the preceding `CycleStat` events with
    /// the same cycle number form one complete `CycleStats` record
    /// (arg = cycle number again, for redundancy).
    CycleEnd,
    /// One field of the per-cycle statistics record.
    CycleStat(StatField),
}

const STAT_BASE: u8 = 0x80;

impl EventKind {
    /// Phase kinds in discriminant order (index == encoded byte).
    const PHASES: [EventKind; 11] = [
        EventKind::Kickoff,
        EventKind::ConcurrentEnd,
        EventKind::Handshake,
        EventKind::StwStart,
        EventKind::StwEnd,
        EventKind::SweepStart,
        EventKind::SweepEnd,
        EventKind::LazySweepRetired,
        EventKind::MutatorIncrement,
        EventKind::BackgroundIncrement,
        EventKind::CycleEnd,
    ];

    /// Encodes to one byte: phase kinds occupy `0..11`, stat kinds
    /// `0x80 + field`.
    pub fn to_u8(self) -> u8 {
        match self {
            EventKind::CycleStat(f) => STAT_BASE + f as u8,
            other => EventKind::PHASES
                .iter()
                .position(|k| *k == other)
                .expect("phase kind") as u8,
        }
    }

    pub fn from_u8(v: u8) -> Option<EventKind> {
        if v >= STAT_BASE {
            StatField::from_u8(v - STAT_BASE).map(EventKind::CycleStat)
        } else {
            EventKind::PHASES.get(v as usize).copied()
        }
    }
}

/// One timestamped telemetry event.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GcEvent {
    /// Nanoseconds since the telemetry epoch (collector construction).
    pub ts_ns: u64,
    /// GC cycle number the event belongs to (0 before the first cycle).
    pub cycle: u32,
    pub kind: EventKind,
    /// Kind-dependent payload; see [`EventKind`].
    pub arg: u64,
}

struct Slot {
    /// `2 * ticket + 1` while the writer of `ticket` is filling the slot,
    /// `2 * ticket + 2` once it is complete. Readers accept a slot only
    /// when they observe the same completed value before and after
    /// copying the payload words.
    seq: AtomicU64,
    ts_ns: AtomicU64,
    /// `cycle << 16 | kind` (kind in the low byte, room to grow).
    meta: AtomicU64,
    arg: AtomicU64,
}

/// The lock-free event ring. See the module docs for the protocol.
///
/// # Known gap: concurrent writers lapping each other
///
/// Unlike `SpanRing` (strictly one writer per track), this ring is
/// multi-writer: tickets are claimed with a cursor RMW and the slot
/// write happens afterwards, unordered with respect to other writers.
/// Two writers whose tickets map to the *same slot* (i.e. one has
/// lapped the other by a full `capacity`) can interleave their payload
/// stores, and because both eventually store their own even `seq`, a
/// reader may validate a seq that matches its ticket around payload
/// words from the other writer. This is outside what `seqlock_model`
/// models (it checks the single-writer slot protocol) and is accepted:
/// it requires a writer to stall mid-`write_slot` for an entire ring
/// generation, the ring is diagnostics-only, and the cost of closing it
/// (per-slot writer CAS) would put an extra RMW on every event. Size
/// the ring so a generation outlasts any plausible stall.
pub struct EventRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 8) before the oldest are overwritten.
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.next_power_of_two().max(8);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever published (monotone; exceeds `capacity` once the
    /// ring has wrapped).
    pub fn published(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed) // MODEL: seqlock_model (monotone ticket)
    }

    #[inline]
    fn write_slot(&self, ticket: u64, ev: &GcEvent) {
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        // MODEL: seqlock_model (crates/check) — the same odd/even slot
        // protocol as SpanRing::record; the fence orders the odd seq
        // store before the payload so a reader can never double-validate
        // a stale even seq around fresh payload
        // (SeqlockMutation::SkipBeginFence).
        slot.seq.store(ticket * 2 + 1, Ordering::Relaxed);
        mcgc_membar::seqlock_write_fence();
        slot.ts_ns.store(ev.ts_ns, Ordering::Relaxed);
        slot.meta.store(
            (ev.cycle as u64) << 16 | ev.kind.to_u8() as u64,
            Ordering::Relaxed,
        );
        slot.arg.store(ev.arg, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Publishes one event. Wait-free: one `fetch_add` plus four relaxed
    /// stores and one release store.
    pub fn publish(&self, ev: GcEvent) {
        // MODEL: seqlock_model — the ticket claim; TicketReuse (never
        // advancing the cursor) breaks sequence monotonicity.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.write_slot(ticket, &ev);
    }

    /// Publishes a batch contiguously: the whole range is claimed with a
    /// single cursor RMW, so no other writer's events interleave in
    /// ticket order. Used to flush thread-local staging in one step.
    pub fn publish_batch(&self, events: &[GcEvent]) {
        if events.is_empty() {
            return;
        }
        let first = self
            .cursor
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        for (i, ev) in events.iter().enumerate() {
            self.write_slot(first + i as u64, ev);
        }
    }

    fn read_slot(&self, ticket: u64) -> Option<GcEvent> {
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        let want = ticket * 2 + 2;
        if slot.seq.load(Ordering::Acquire) != want {
            return None;
        }
        // seqlock-read: begin — speculative copy window; no stores or
        // early returns allowed here (enforced by mcgc-lint).
        // MODEL: seqlock_model — relaxed payload loads under seqlock
        // validation.
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let arg = slot.arg.load(Ordering::Relaxed);
        // seqlock-read: end
        mcgc_membar::seqlock_read_fence();
        if slot.seq.load(Ordering::Acquire) != want {
            return None; // lapped mid-read
        }
        let kind = EventKind::from_u8((meta & 0xFF) as u8)?;
        Some(GcEvent {
            ts_ns,
            cycle: (meta >> 16) as u32,
            kind,
            arg,
        })
    }

    /// Copies out the events currently retained, oldest first. Slots that
    /// are mid-write or get lapped while we read are skipped, so under a
    /// heavy concurrent write load the snapshot can miss a few of the
    /// oldest events; it never returns a torn one.
    ///
    /// Writers stamp their clock before the wait-free ticket claim, so
    /// under contention ticket order and timestamp order can disagree by
    /// a pair or two; a snapshot presents a timeline, so it re-sorts by
    /// stamp (stable: ties keep publication order, and any single
    /// thread's events are already monotone).
    pub fn snapshot(&self) -> Vec<GcEvent> {
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(self.slots.len() as u64);
        let mut evs: Vec<GcEvent> = (start..end).filter_map(|t| self.read_slot(t)).collect();
        evs.sort_by_key(|e| e.ts_ns);
        evs
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("published", &self.published())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(kind: EventKind, cycle: u32, arg: u64) -> GcEvent {
        GcEvent {
            ts_ns: 123,
            cycle,
            kind,
            arg,
        }
    }

    #[test]
    fn kind_codec_roundtrip() {
        for i in 0..EventKind::PHASES.len() {
            let k = EventKind::PHASES[i];
            assert_eq!(EventKind::from_u8(k.to_u8()), Some(k));
        }
        for f in StatField::ALL {
            let k = EventKind::CycleStat(f);
            assert_eq!(EventKind::from_u8(k.to_u8()), Some(k));
        }
        assert_eq!(EventKind::from_u8(0x7F), None);
        assert_eq!(EventKind::from_u8(0xFF), None);
    }

    #[test]
    fn publish_then_snapshot_in_order() {
        let ring = EventRing::new(64);
        for i in 0..10u64 {
            ring.publish(ev(EventKind::Handshake, 1, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.arg, i as u64);
            assert_eq!(e.kind, EventKind::Handshake);
        }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = EventRing::new(8);
        for i in 0..100u64 {
            ring.publish(ev(EventKind::MutatorIncrement, 2, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 8);
        let args: Vec<u64> = got.iter().map(|e| e.arg).collect();
        assert_eq!(args, (92..100).collect::<Vec<_>>());
        assert_eq!(ring.published(), 100);
    }

    #[test]
    fn batch_is_contiguous() {
        let ring = EventRing::new(64);
        ring.publish(ev(EventKind::Kickoff, 1, 0));
        let batch: Vec<GcEvent> = (0..5)
            .map(|i| ev(EventKind::CycleStat(StatField::PauseMs), 1, i))
            .collect();
        ring.publish_batch(&batch);
        let got = ring.snapshot();
        assert_eq!(got.len(), 6);
        for (i, e) in got[1..].iter().enumerate() {
            assert_eq!(e.arg, i as u64);
        }
    }

    #[test]
    fn wraparound_under_concurrent_writers() {
        // Satellite (c): hammer a small ring from several threads while a
        // reader snapshots continuously; every event a snapshot returns
        // must be well-formed (a value some writer actually published),
        // and the final count must equal the total published.
        let ring = Arc::new(EventRing::new(64));
        let writers = 4;
        // Shrunk under Miri (interpreted): still wraps the 64-slot ring
        // many times over per writer.
        let per_writer = if cfg!(miri) { 500u64 } else { 20_000u64 };
        let mut handles = Vec::new();
        for w in 0..writers {
            let r = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_writer {
                    r.publish(GcEvent {
                        ts_ns: i,
                        cycle: w as u32,
                        kind: EventKind::BackgroundIncrement,
                        arg: (w as u64) << 32 | i,
                    });
                }
            }));
        }
        let reader = {
            let r = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut snapshots = 0usize;
                while r.published() < writers as u64 * per_writer {
                    for e in r.snapshot() {
                        assert_eq!(e.kind, EventKind::BackgroundIncrement);
                        let w = e.arg >> 32;
                        let i = e.arg & 0xFFFF_FFFF;
                        assert!(w < writers as u64, "writer id {w}");
                        assert!(i < per_writer, "iteration {i}");
                        assert_eq!(e.cycle as u64, w);
                        assert_eq!(e.ts_ns, i);
                    }
                    snapshots += 1;
                }
                snapshots
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0);
        assert_eq!(ring.published(), writers as u64 * per_writer);
        // Quiescent now: a final snapshot returns exactly one ring-full.
        assert_eq!(ring.snapshot().len(), ring.capacity());
    }
}
