//! Flight-recorder consumers: a Chrome trace-event / Perfetto JSON
//! exporter, a dependency-free schema validator for its output, and the
//! automated pause postmortem.
//!
//! # Exporter
//!
//! [`export_chrome_trace`] renders a [`SpanRecorder`] snapshot as the
//! JSON-object form of the Chrome trace-event format — load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Every recorder track
//! becomes one thread track (`tid = track index + 1`, named by an `"M"`
//! metadata event), spans become matched `"B"`/`"E"` duration events
//! nested by interval containment, and counter points become `"C"`
//! counter events (Perfetto draws each name as its own counter track).
//! Events are globally sorted by timestamp.
//!
//! # Validator
//!
//! [`validate_chrome_trace`] re-parses exporter output with a built-in
//! minimal JSON parser (the workspace is dependency-free by design) and
//! checks the structural schema: a `traceEvents` array, non-decreasing
//! timestamps, and per-tid `"B"`/`"E"` events that match like brackets.
//! CI runs it against a trace captured from a live collector; the golden
//! test below pins the exact output for a synthetic recorder.
//!
//! # Postmortem
//!
//! [`pause_postmortems`] folds the spans inside each recorded pause into
//! a per-bucket, per-worker attribution: wall time per pause phase
//! (= scheduler bucket), busy versus idle time per scheduler worker
//! within each bucket, items claimed, an imbalance ratio (max/mean
//! worker busy time), the bucket's aggregate busy share, and the
//! fraction of the pause wall clock covered by phase spans (the
//! collector's phase guards tile the pause, so coverage ≥ 95% is an
//! acceptance criterion, not an aspiration).

use crate::spans::{Span, SpanKind, SpanRecorder, TrackSnapshot};

// ---------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Microseconds with nanosecond precision, as Chrome's `ts` expects.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// One track's spans as a properly nested `"B"`/`"E"` event sequence.
///
/// Guard scoping makes same-track spans nest structurally; this walk
/// re-derives the nesting from the intervals (sort by begin ascending,
/// end descending, so an outer span precedes the inner ones it contains)
/// and defensively clips a child that would overhang its parent — a
/// clock-resolution artifact, never a recorded fact — so the output
/// always brackets.
fn track_events(track: &TrackSnapshot, out: &mut Vec<(u64, String)>) {
    let tid = track.id.0 as u32 + 1;
    let mut spans = track.spans.clone();
    spans.sort_by(|a, b| a.begin_ns.cmp(&b.begin_ns).then(b.end_ns.cmp(&a.end_ns)));
    // (name, end_ns) of currently open spans.
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    let close = |stack: &mut Vec<(&'static str, u64)>, out: &mut Vec<(u64, String)>| {
        let (name, end) = stack.pop().expect("caller checked");
        let mut e = String::new();
        e.push_str("{\"name\":\"");
        e.push_str(name);
        e.push_str("\",\"ph\":\"E\",\"pid\":1,\"tid\":");
        e.push_str(&tid.to_string());
        e.push_str(",\"ts\":");
        e.push_str(&ts_us(end));
        e.push('}');
        out.push((end, e));
    };
    for s in &spans {
        while stack.last().is_some_and(|(_, end)| *end <= s.begin_ns) {
            close(&mut stack, out);
        }
        let end = match stack.last() {
            Some((_, parent_end)) => s.end_ns.min(*parent_end),
            None => s.end_ns,
        };
        let mut b = String::new();
        b.push_str("{\"name\":\"");
        b.push_str(s.kind.name());
        b.push_str("\",\"cat\":\"gc\",\"ph\":\"B\",\"pid\":1,\"tid\":");
        b.push_str(&tid.to_string());
        b.push_str(",\"ts\":");
        b.push_str(&ts_us(s.begin_ns));
        b.push_str(",\"args\":{\"cycle\":");
        b.push_str(&s.cycle.to_string());
        b.push_str(",\"arg\":");
        b.push_str(&s.arg.to_string());
        b.push_str("}}");
        out.push((s.begin_ns, b));
        stack.push((s.kind.name(), end));
    }
    while !stack.is_empty() {
        close(&mut stack, out);
    }
}

/// Renders the recorder's retained spans and counter points as Chrome
/// trace-event JSON (the `{"traceEvents": [...]}` object form).
pub fn export_chrome_trace(rec: &SpanRecorder) -> String {
    let tracks = rec.tracks();
    let mut events: Vec<(u64, String)> = Vec::new();
    events.push((
        0,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"ts\":0,\
         \"args\":{\"name\":\"mcgc\"}}"
            .to_string(),
    ));
    for t in &tracks {
        let mut m = String::new();
        m.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        m.push_str(&(t.id.0 as u32 + 1).to_string());
        m.push_str(",\"ts\":0,\"args\":{\"name\":\"");
        push_escaped(&mut m, &t.name);
        m.push_str("\"}}");
        events.push((0, m));
    }
    for t in &tracks {
        track_events(t, &mut events);
    }
    for p in rec.counter_points() {
        if !p.value.is_finite() {
            continue; // JSON has no NaN/Infinity literals
        }
        let mut c = String::new();
        c.push_str("{\"name\":\"");
        push_escaped(&mut c, &p.name);
        c.push_str("\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":");
        c.push_str(&ts_us(p.ts_ns));
        c.push_str(",\"args\":{\"value\":");
        c.push_str(&format!("{:.6}", p.value));
        c.push_str("}}");
        events.push((p.ts_ns, c));
    }
    // Stable: equal timestamps keep their per-track emission order, so
    // same-instant B/E pairs still bracket correctly.
    events.sort_by_key(|(ts, _)| *ts);
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, (_, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parser + trace validator
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough for trace validation; the workspace
/// stays dependency-free).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u hex"))?;
                            self.pos += 4;
                            // Lone surrogates render as the replacement
                            // character; the exporter never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Take the whole run of plain characters up to the
                    // next quote or escape in one go — validating only
                    // the run keeps parsing linear in document size.
                    self.pos -= 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected , or ]")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected , or }")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// What a validated trace contains.
#[derive(Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events of any phase.
    pub events: usize,
    /// Matched `"B"`/`"E"` span pairs.
    pub spans: usize,
    /// `"C"` counter events.
    pub counters: usize,
    /// Distinct tids that carried at least one span.
    pub span_tracks: usize,
}

/// Validates `text` against the Chrome trace-event schema subset the
/// exporter emits: a JSON object with a `traceEvents` array, every event
/// an object with a string `ph`, timestamps globally non-decreasing, and
/// per-tid `"B"`/`"E"` events matching like brackets (same names, no
/// unclosed or stray ends).
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = TraceStats {
        events: events.len(),
        spans: 0,
        counters: 0,
        span_tracks: 0,
    };
    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut span_tids: std::collections::BTreeSet<u64> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let ts = ev.get("ts").and_then(Json::as_num).unwrap_or(0.0);
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let name = ev.get("name").and_then(Json::as_str);
        match ph {
            "B" => {
                let name = name.ok_or(format!("event {i}: B without name"))?;
                stacks.entry(tid).or_default().push(name.to_string());
                span_tids.insert(tid);
            }
            "E" => {
                let open = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .ok_or(format!("event {i}: E with no open B on tid {tid}"))?;
                if let Some(n) = name {
                    if n != open {
                        return Err(format!(
                            "event {i}: E name {n:?} closes B name {open:?} on tid {tid}"
                        ));
                    }
                }
                stats.spans += 1;
            }
            "C" => stats.counters += 1,
            "M" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} unclosed B events {stack:?}",
                stack.len()
            ));
        }
    }
    stats.span_tracks = span_tids.len();
    Ok(stats)
}

// ---------------------------------------------------------------------
// Pause postmortem
// ---------------------------------------------------------------------

/// One scheduler worker's share of a pause phase (bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerCut {
    /// Track (thread) name.
    pub track: String,
    /// Time inside [`SpanKind::SchedJob`] spans overlapping the phase.
    pub busy_ns: u64,
    /// Phase wall time the worker was *not* inside a job (bucket-scan
    /// latency, claim starvation).
    pub idle_ns: u64,
    /// Items claimed (sum of job-span payloads).
    pub claimed: u64,
}

/// One pause phase's attribution (all spans of the kind, aggregated).
/// A pause phase is one scheduler bucket, so this is also the per-bucket
/// busy/idle cut.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCut {
    pub kind: SpanKind,
    /// Summed wall time of the phase spans.
    pub wall_ns: u64,
    /// Per-worker busy/idle split (empty for serial phases).
    pub workers: Vec<WorkerCut>,
    /// max/mean busy time across participating workers (1.0 = perfectly
    /// balanced; only meaningful with ≥ 2 participants).
    pub imbalance: f64,
    /// Aggregate busy share of the bucket: summed worker busy time over
    /// `wall_ns × participants` (1.0 = every participant busy the whole
    /// bucket; 0.0 for serial phases with no job spans).
    pub busy_share: f64,
}

/// The automated attribution report for one stop-the-world pause.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    pub cycle: u32,
    /// Pause window in recorder time.
    pub begin_ns: u64,
    pub wall_ns: u64,
    /// Phase cuts in [`SpanKind::PAUSE_PHASES`] order (phases that never
    /// ran are omitted).
    pub phases: Vec<PhaseCut>,
    /// Pause wall time covered by top-level phase spans.
    pub attributed_ns: u64,
    /// `attributed_ns / wall_ns` (the ≥ 0.95 acceptance criterion).
    pub coverage: f64,
    /// The phase with the largest wall share, if any.
    pub worst_phase: Option<SpanKind>,
    /// The largest per-phase imbalance ratio.
    pub worst_imbalance: f64,
    /// Leader time spent spin-waiting for open buckets to drain (the
    /// scheduler's replacement for the old per-phase barrier wait).
    pub drain_wait_ns: u64,
    /// Wall time of this cycle's sweep-chunk spans (refill, background,
    /// straggler/escalation) recorded *outside* the pause window — the
    /// reclamation work the sweep epoch moved off the pause path.
    pub offpause_sweep_ns: u64,
    /// Number of those off-pause sweep-chunk spans.
    pub offpause_sweep_chunks: u64,
}

fn phase_cut(kind: SpanKind, windows: &[&Span], tracks: &[TrackSnapshot]) -> PhaseCut {
    let wall_ns: u64 = windows.iter().map(|s| s.duration_ns()).sum();
    let mut workers: Vec<WorkerCut> = Vec::new();
    for t in tracks {
        let mut busy = 0u64;
        let mut claimed = 0u64;
        let mut jobs = 0usize;
        for s in t.spans.iter().filter(|s| s.kind == SpanKind::SchedJob) {
            for w in windows {
                let ov = s.overlap_ns(w.begin_ns, w.end_ns);
                if ov > 0 {
                    busy += ov;
                    claimed += s.arg;
                    jobs += 1;
                }
            }
        }
        if jobs > 0 {
            workers.push(WorkerCut {
                track: t.name.clone(),
                busy_ns: busy,
                idle_ns: wall_ns.saturating_sub(busy),
                claimed,
            });
        }
    }
    let imbalance = if workers.len() >= 2 {
        let max = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
        let mean = workers.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / workers.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    } else {
        1.0
    };
    let busy_share = if wall_ns > 0 && !workers.is_empty() {
        workers.iter().map(|w| w.busy_ns).sum::<u64>() as f64
            / (wall_ns as f64 * workers.len() as f64)
    } else {
        0.0
    };
    PhaseCut {
        kind,
        wall_ns,
        workers,
        imbalance,
        busy_share,
    }
}

/// Folds the recorder's spans into one [`Postmortem`] per recorded
/// pause, oldest first.
pub fn pause_postmortems(rec: &SpanRecorder) -> Vec<Postmortem> {
    let tracks = rec.tracks();
    let mut pauses: Vec<Span> = tracks
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter(|s| s.kind == SpanKind::Pause)
        .copied()
        .collect();
    pauses.sort_by_key(|s| s.begin_ns);
    pauses
        .iter()
        .map(|p| {
            let in_window =
                |s: &&Span| s.cycle == p.cycle && s.begin_ns >= p.begin_ns && s.begin_ns < p.end_ns;
            let mut phases = Vec::new();
            let mut attributed = 0u64;
            for kind in SpanKind::PAUSE_PHASES {
                let windows: Vec<&Span> = tracks
                    .iter()
                    .flat_map(|t| t.spans.iter())
                    .filter(|s| s.kind == kind)
                    .filter(in_window)
                    .collect();
                if windows.is_empty() {
                    continue;
                }
                attributed += windows
                    .iter()
                    .map(|s| s.overlap_ns(p.begin_ns, p.end_ns))
                    .sum::<u64>();
                phases.push(phase_cut(kind, &windows, &tracks));
            }
            let drain_wait_ns = tracks
                .iter()
                .flat_map(|t| t.spans.iter())
                .filter(|s| s.kind == SpanKind::SchedDrainWait)
                .filter(in_window)
                .map(Span::duration_ns)
                .sum();
            let offpause_sweep: Vec<u64> = tracks
                .iter()
                .flat_map(|t| t.spans.iter())
                .filter(|s| {
                    matches!(
                        s.kind,
                        SpanKind::RefillSweepChunk
                            | SpanKind::BgSweepChunk
                            | SpanKind::LazySweepChunk
                    )
                })
                .filter(|s| s.cycle == p.cycle && !in_window(s))
                .map(Span::duration_ns)
                .collect();
            let wall_ns = p.duration_ns();
            Postmortem {
                cycle: p.cycle,
                begin_ns: p.begin_ns,
                wall_ns,
                attributed_ns: attributed,
                coverage: if wall_ns > 0 {
                    attributed as f64 / wall_ns as f64
                } else {
                    0.0
                },
                worst_phase: phases.iter().max_by_key(|c| c.wall_ns).map(|c| c.kind),
                worst_imbalance: phases.iter().map(|c| c.imbalance).fold(1.0, f64::max),
                phases,
                drain_wait_ns,
                offpause_sweep_ns: offpause_sweep.iter().sum(),
                offpause_sweep_chunks: offpause_sweep.len() as u64,
            }
        })
        .collect()
}

/// The postmortem for the longest recorded pause.
pub fn worst_pause_postmortem(rec: &SpanRecorder) -> Option<Postmortem> {
    pause_postmortems(rec).into_iter().max_by_key(|p| p.wall_ns)
}

impl Postmortem {
    /// A human-readable report (the `gc_trace` example prints this).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        writeln!(
            out,
            "pause postmortem: cycle {}, wall {:.3} ms, {:.1}% attributed to {} buckets, \
             drain wait {:.3} ms",
            self.cycle,
            ms(self.wall_ns),
            self.coverage * 100.0,
            self.phases.len(),
            ms(self.drain_wait_ns),
        )
        .unwrap();
        writeln!(
            out,
            "  {:<16} {:>10} {:>7}  {:>8} {:>9} {:>7}",
            "bucket", "wall_ms", "share", "workers", "max/avg", "busy"
        )
        .unwrap();
        for c in &self.phases {
            let share = if self.wall_ns > 0 {
                c.wall_ns as f64 / self.wall_ns as f64 * 100.0
            } else {
                0.0
            };
            let (nworkers, imb, busy) = if c.workers.is_empty() {
                ("-".to_string(), "-".to_string(), "-".to_string())
            } else {
                (
                    c.workers.len().to_string(),
                    format!("{:.2}", c.imbalance),
                    format!("{:.0}%", c.busy_share * 100.0),
                )
            };
            writeln!(
                out,
                "  {:<16} {:>10.3} {:>6.1}%  {:>8} {:>9} {:>7}",
                c.kind.name(),
                ms(c.wall_ns),
                share,
                nworkers,
                imb,
                busy,
            )
            .unwrap();
        }
        if self.offpause_sweep_chunks > 0 {
            writeln!(
                out,
                "  off-pause sweep: {} chunk spans, {:.3} ms (reclaimed outside this pause)",
                self.offpause_sweep_chunks,
                ms(self.offpause_sweep_ns),
            )
            .unwrap();
        }
        if let Some(worst) = self.worst_phase {
            if let Some(c) = self.phases.iter().find(|c| c.kind == worst) {
                if !c.workers.is_empty() {
                    writeln!(out, "  slowest bucket {} per worker:", worst.name()).unwrap();
                    for w in &c.workers {
                        writeln!(
                            out,
                            "    {:<14} busy {:>8.3} ms, idle {:>8.3} ms, {} claimed",
                            w.track,
                            ms(w.busy_ns),
                            ms(w.idle_ns),
                            w.claimed,
                        )
                        .unwrap();
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> SpanRecorder {
        let r = SpanRecorder::new(64);
        let coord = r.named_track("gc coordinator").unwrap();
        let w0 = r.named_track("mcgc-sched-0").unwrap();
        let w1 = r.named_track("mcgc-sched-1").unwrap();
        r.set_cycle(3);
        // A 1000 ns pause: cards 0..400, drain 400..900, account 900..1000.
        r.record_span(coord, SpanKind::Pause, 0, 1000, 0);
        r.record_span(coord, SpanKind::PauseCards, 0, 400, 12);
        r.record_span(coord, SpanKind::PauseDrain, 400, 900, 1);
        r.record_span(coord, SpanKind::PauseAccount, 900, 1000, 3);
        // Worker 0 does 390 of the 400 ns cards phase; worker 1 only 130:
        // imbalance = 390 / ((390 + 130) / 2) = 1.5.
        r.record_span(w0, SpanKind::SchedJob, 5, 395, 64);
        r.record_span(w1, SpanKind::SchedJob, 10, 140, 16);
        // Both drain fully (balanced).
        r.record_span(w0, SpanKind::SchedJob, 400, 900, 10);
        r.record_span(w1, SpanKind::SchedJob, 400, 900, 10);
        r.record_span(coord, SpanKind::SchedDrainWait, 395, 400, 0);
        r
    }

    #[test]
    fn golden_chrome_trace_export() {
        let r = SpanRecorder::new(64);
        let t = r.named_track("gc coordinator").unwrap();
        r.set_cycle(1);
        r.record_span(t, SpanKind::Pause, 1000, 5000, 2);
        r.record_span(t, SpanKind::PauseCards, 1000, 3000, 8);
        r.record_counter_at(5000, "heap_occupancy", 0.5);
        let json = export_chrome_trace(&r);
        // Golden: pins the exact serialization (field order, ts format,
        // nesting) against the Chrome trace-event schema.
        let want = "{\"traceEvents\":[\n\
            {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"ts\":0,\"args\":{\"name\":\"mcgc\"}},\n\
            {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\"args\":{\"name\":\"gc coordinator\"}},\n\
            {\"name\":\"gc.pause\",\"cat\":\"gc\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"args\":{\"cycle\":1,\"arg\":2}},\n\
            {\"name\":\"pause.cards\",\"cat\":\"gc\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"args\":{\"cycle\":1,\"arg\":8}},\n\
            {\"name\":\"pause.cards\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":3.000},\n\
            {\"name\":\"gc.pause\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":5.000},\n\
            {\"name\":\"heap_occupancy\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":5.000,\"args\":{\"value\":0.500000}}\n\
            ]}\n";
        assert_eq!(json, want);
        let stats = validate_chrome_trace(&json).expect("golden trace validates");
        assert_eq!(
            stats,
            TraceStats {
                events: 7,
                spans: 2,
                counters: 1,
                span_tracks: 1,
            }
        );
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Stray E.
        let stray = r#"{"traceEvents":[{"name":"x","ph":"E","tid":1,"ts":1}]}"#;
        assert!(validate_chrome_trace(stray)
            .unwrap_err()
            .contains("no open B"));
        // Unclosed B.
        let unclosed = r#"{"traceEvents":[{"name":"x","ph":"B","tid":1,"ts":1}]}"#;
        assert!(validate_chrome_trace(unclosed)
            .unwrap_err()
            .contains("unclosed"));
        // Unsorted timestamps.
        let unsorted = r#"{"traceEvents":[
            {"name":"x","ph":"B","tid":1,"ts":5},
            {"name":"x","ph":"E","tid":1,"ts":4}]}"#;
        assert!(validate_chrome_trace(unsorted).unwrap_err().contains("ts"));
        // Mismatched names.
        let crossed = r#"{"traceEvents":[
            {"name":"x","ph":"B","tid":1,"ts":1},
            {"name":"y","ph":"E","tid":1,"ts":2}]}"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("closes"));
    }

    #[test]
    fn exporter_interleaves_tracks_sorted_by_ts() {
        let r = SpanRecorder::new(64);
        let a = r.named_track("a").unwrap();
        let b = r.named_track("b").unwrap();
        for i in 0..20u64 {
            r.record_span(a, SpanKind::SchedJob, i * 100, i * 100 + 40, i);
            r.record_span(b, SpanKind::SchedJob, i * 100 + 50, i * 100 + 90, i);
        }
        let stats = validate_chrome_trace(&export_chrome_trace(&r)).expect("valid");
        assert_eq!(stats.spans, 40);
        assert_eq!(stats.span_tracks, 2);
    }

    #[test]
    fn postmortem_attributes_known_imbalance() {
        let r = synthetic();
        let pms = pause_postmortems(&r);
        assert_eq!(pms.len(), 1);
        let pm = &pms[0];
        assert_eq!(pm.cycle, 3);
        assert_eq!(pm.wall_ns, 1000);
        // cards 400 + drain 500 + account 100 = the whole pause.
        assert_eq!(pm.attributed_ns, 1000);
        assert!((pm.coverage - 1.0).abs() < 1e-12);
        assert_eq!(pm.worst_phase, Some(SpanKind::PauseDrain));
        let cards = pm
            .phases
            .iter()
            .find(|c| c.kind == SpanKind::PauseCards)
            .unwrap();
        assert_eq!(cards.workers.len(), 2);
        let w0 = cards
            .workers
            .iter()
            .find(|w| w.track == "mcgc-sched-0")
            .unwrap();
        let w1 = cards
            .workers
            .iter()
            .find(|w| w.track == "mcgc-sched-1")
            .unwrap();
        assert_eq!(w0.busy_ns, 390);
        assert_eq!(w1.busy_ns, 130);
        assert_eq!(w0.claimed, 64);
        assert!((cards.imbalance - 1.5).abs() < 1e-12, "{}", cards.imbalance);
        let drain = pm
            .phases
            .iter()
            .find(|c| c.kind == SpanKind::PauseDrain)
            .unwrap();
        assert!((drain.imbalance - 1.0).abs() < 1e-12);
        assert_eq!(pm.drain_wait_ns, 5);
        assert!((pm.worst_imbalance - 1.5).abs() < 1e-12);
        // The report renders every phase and the per-worker split.
        let text = pm.render();
        assert!(text.contains("pause.cards"));
        assert!(text.contains("mcgc-sched-1"));
    }

    #[test]
    fn worst_pause_is_longest() {
        let r = SpanRecorder::new(64);
        let t = r.named_track("gc coordinator").unwrap();
        r.set_cycle(1);
        r.record_span(t, SpanKind::Pause, 0, 100, 0);
        r.record_span(t, SpanKind::PauseSweep, 0, 100, 0);
        r.set_cycle(2);
        r.record_span(t, SpanKind::Pause, 200, 900, 0);
        r.record_span(t, SpanKind::PauseSweep, 200, 900, 0);
        let worst = worst_pause_postmortem(&r).unwrap();
        assert_eq!(worst.cycle, 2);
        assert_eq!(worst.wall_ns, 700);
    }
}
