//! Live GC telemetry: a phase-event ring buffer, log-scaled latency
//! histograms, and a counter/gauge registry — dependency-free, wait-free
//! on every hot path, queryable mid-run.
//!
//! # Architecture
//!
//! [`Telemetry`] bundles four always-on pieces:
//!
//! - an [`EventRing`]: a fixed-capacity lock-free ring of timestamped
//!   [`GcEvent`]s recording phase transitions (kickoff, concurrent end,
//!   handshakes, STW start/end, sweep) and per-increment tracing events.
//!   Writers claim slots with one `fetch_add`; thread-local [`EventStage`]
//!   buffers batch per-increment events so the hot path pays a single
//!   flush per increment.
//! - two [`LogHistogram`]s (power-of-two buckets) for stop-the-world
//!   pause and tracing-increment latencies, with p50/p90/p99/max and mean
//!   queryable at any time, plus a [`UtilizationTracker`] answering
//!   MMU-style minimum-mutator-utilization queries over sliding windows.
//! - a [`MetricsRegistry`] of named counters (bytes traced by
//!   mutator/background/STW, cards cleaned, CAS ops, handshakes, ...) and
//!   gauges (packet sub-pool occupancy, pacer estimates K0/L/M/B, heap
//!   occupancy) with text and JSON exporters.
//!
//! # Event taxonomy
//!
//! Phase events ([`EventKind`]): `Kickoff` (arg = free bytes),
//! `ConcurrentEnd` (arg = trigger code), `Handshake` (arg = cards
//! cleaned), `StwStart` (arg = trigger code), `StwEnd` (arg = wall pause
//! ns), `SweepStart` (arg = 0 eager / 1 lazy), `SweepEnd` (arg = live
//! objects; 0 for lazy epochs, whose live count is not known until the
//! epoch retires), `LazySweepRetired` (arg = free bytes after
//! retirement),
//! `MutatorIncrement` / `BackgroundIncrement` (arg = bytes traced).
//!
//! Per-cycle statistics are emitted as a contiguous batch of
//! `CycleStat(field)` events terminated by `CycleEnd`. Each stat event's
//! `arg` carries the raw field value — `f64::to_bits` for floating-point
//! fields — so a `GcLog` rebuilt by replaying the stream is **bit-for-bit
//! identical** to the collector's direct accounting; the paper's §6
//! tables and a live view can never disagree.
//!
//! # Exporter formats
//!
//! [`MetricsRegistry::render_text`] emits one `name value` line per
//! metric, sorted by name (counters as integers, gauges with six decimal
//! places) — Prometheus exposition style without type annotations.
//! [`MetricsRegistry::render_json`] emits a flat, name-sorted JSON object
//! `{"name": value, ...}`; non-finite gauges render as `null`.
//!
//! # Overhead
//!
//! Recording an event is one `fetch_add` plus five plain stores; a
//! histogram sample is four relaxed RMWs; a counter bump is one. The
//! whole pipeline can be disabled at runtime ([`Telemetry::set_enabled`])
//! for A/B overhead measurement — `benches/telemetry_overhead.rs` in the
//! `mcgc-bench` crate measures the enabled/disabled throughput delta on
//! the jbb workload (<2% in release builds).

pub mod histogram;
pub mod registry;
pub mod ring;
pub mod spans;
pub mod trace_export;

pub use histogram::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, LogHistogram, UtilizationTracker,
};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use ring::{EventKind, EventRing, GcEvent, StatField};
pub use spans::{Span, SpanGuard, SpanKind, SpanRecorder, SpanRing, TrackId};
pub use trace_export::{
    export_chrome_trace, pause_postmortems, validate_chrome_trace, Postmortem, TraceStats,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default event-ring capacity (events retained before overwrite).
pub const DEFAULT_RING_CAPACITY: usize = 32 * 1024;

/// A thread-local staging buffer: build up the events of one tracing
/// increment locally, then publish them with a single claim on the ring
/// cursor. Keeps per-object work entirely off shared cache lines.
#[derive(Debug, Default)]
pub struct EventStage {
    buf: Vec<GcEvent>,
}

impl EventStage {
    pub fn new() -> EventStage {
        EventStage::default()
    }

    #[inline]
    pub fn push(&mut self, ev: GcEvent) {
        self.buf.push(ev);
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Publishes everything staged as one contiguous batch and empties
    /// the stage (retaining its allocation).
    pub fn flush_into(&mut self, ring: &EventRing) {
        ring.publish_batch(&self.buf);
        self.buf.clear();
    }
}

/// The telemetry hub a collector embeds. All methods are safe to call
/// from any thread; everything on a hot path is wait-free.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    enabled: AtomicBool,
    ring: EventRing,
    pause_ns: LogHistogram,
    increment_ns: LogHistogram,
    alloc_stall_ns: LogHistogram,
    straggler_ns: LogHistogram,
    registry: MetricsRegistry,
    utilization: UtilizationTracker,
    /// The flight recorder (shared so the scheduler, heap, and exporters
    /// can hold their own handle). Timestamps share this hub's epoch.
    spans: Arc<SpanRecorder>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(DEFAULT_RING_CAPACITY)
    }
}

impl Telemetry {
    /// Creates a hub whose ring retains `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> Telemetry {
        let epoch = Instant::now();
        Telemetry {
            epoch,
            enabled: AtomicBool::new(true),
            ring: EventRing::new(ring_capacity),
            pause_ns: LogHistogram::new(),
            increment_ns: LogHistogram::new(),
            alloc_stall_ns: LogHistogram::new(),
            straggler_ns: LogHistogram::new(),
            registry: MetricsRegistry::new(),
            utilization: UtilizationTracker::new(),
            spans: Arc::new(SpanRecorder::with_epoch(
                epoch,
                spans::DEFAULT_TRACK_CAPACITY,
            )),
        }
    }

    /// Nanoseconds since this hub was created (the event timestamp base).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Whether recording is on (it is by default). When off, every
    /// `emit`/`record` call is a single relaxed load and a branch —
    /// this is the "disabled" arm of the overhead benchmark.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggles the whole pipeline, flight recorder included (the A/B
    /// overhead benchmark's "off" arm).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        self.spans.set_enabled(on);
    }

    /// The flight recorder: per-thread span rings sharing this hub's
    /// timestamp epoch. Clone the `Arc` to hand subsystems (the GC
    /// scheduler, the heap's free list) their own recording handle.
    pub fn spans(&self) -> &Arc<SpanRecorder> {
        &self.spans
    }

    /// Publishes one event timestamped now.
    #[inline]
    pub fn emit(&self, kind: EventKind, cycle: u32, arg: u64) {
        if self.is_enabled() {
            self.ring.publish(GcEvent {
                ts_ns: self.now_ns(),
                cycle,
                kind,
                arg,
            });
        }
    }

    /// Stages one event (timestamped now) into a thread-local buffer for
    /// a later [`Telemetry::flush`].
    #[inline]
    pub fn stage(&self, stage: &mut EventStage, kind: EventKind, cycle: u32, arg: u64) {
        if self.is_enabled() {
            stage.push(GcEvent {
                ts_ns: self.now_ns(),
                cycle,
                kind,
                arg,
            });
        }
    }

    /// Publishes a staged batch contiguously.
    pub fn flush(&self, stage: &mut EventStage) {
        if !stage.is_empty() {
            stage.flush_into(&self.ring);
        }
    }

    /// Records a stop-the-world pause `[start_ns, end_ns]`: feeds the
    /// pause histogram and the utilization tracker.
    pub fn record_pause_ns(&self, start_ns: u64, end_ns: u64) {
        if self.is_enabled() {
            self.pause_ns.record(end_ns.saturating_sub(start_ns));
            self.utilization.record_pause(start_ns, end_ns);
        }
    }

    /// Records one tracing-increment latency.
    #[inline]
    pub fn record_increment_ns(&self, ns: u64) {
        if self.is_enabled() {
            self.increment_ns.record(ns);
        }
    }

    /// Records one bounded allocation-backpressure stall (the time a
    /// mutator spent waiting — and helping — before memory appeared or
    /// its deadline expired into a typed OOM).
    #[inline]
    pub fn record_alloc_stall_ns(&self, ns: u64) {
        if self.is_enabled() {
            self.alloc_stall_ns.record(ns);
        }
    }

    /// Records one straggler fence: the time the next cycle's pause
    /// leader spent finishing chunks the previous sweep epoch left
    /// unswept (bounded — refill and background sweeping drain most of
    /// the heap off-pause).
    #[inline]
    pub fn record_straggler_ns(&self, ns: u64) {
        if self.is_enabled() {
            self.straggler_ns.record(ns);
        }
    }

    /// Mutator utilization over the trailing `window_ns` ending now.
    pub fn mutator_utilization(&self, window_ns: u64) -> f64 {
        self.utilization.utilization(self.now_ns(), window_ns)
    }

    /// Minimum mutator utilization over any `window_ns` window so far.
    pub fn minimum_mutator_utilization(&self, window_ns: u64) -> f64 {
        self.utilization
            .minimum_utilization(self.now_ns(), window_ns)
    }

    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<GcEvent> {
        self.ring.snapshot()
    }

    pub fn pause_histogram(&self) -> &LogHistogram {
        &self.pause_ns
    }

    pub fn increment_histogram(&self) -> &LogHistogram {
        &self.increment_ns
    }

    pub fn alloc_stall_histogram(&self) -> &LogHistogram {
        &self.alloc_stall_ns
    }

    pub fn straggler_histogram(&self) -> &LogHistogram {
        &self.straggler_ns
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn utilization_tracker(&self) -> &UtilizationTracker {
        &self.utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_snapshot() {
        let t = Telemetry::new(128);
        t.emit(EventKind::Kickoff, 1, 4096);
        t.emit(EventKind::StwStart, 1, 0);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Kickoff);
        assert_eq!(evs[0].arg, 4096);
        assert!(evs[1].ts_ns >= evs[0].ts_ns);
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new(128);
        t.set_enabled(false);
        t.emit(EventKind::Kickoff, 1, 0);
        t.record_pause_ns(0, 1_000_000);
        t.record_increment_ns(500);
        t.record_alloc_stall_ns(500);
        t.record_straggler_ns(500);
        let mut stage = EventStage::new();
        t.stage(&mut stage, EventKind::Handshake, 1, 1);
        t.flush(&mut stage);
        assert!(t.events().is_empty());
        assert_eq!(t.pause_histogram().count(), 0);
        assert_eq!(t.increment_histogram().count(), 0);
        assert_eq!(t.alloc_stall_histogram().count(), 0);
        assert_eq!(t.straggler_histogram().count(), 0);
    }

    #[test]
    fn staged_flush_is_one_batch() {
        let t = Telemetry::new(128);
        let mut stage = EventStage::new();
        for i in 0..4 {
            t.stage(&mut stage, EventKind::MutatorIncrement, 2, i);
        }
        assert!(t.events().is_empty(), "nothing published before flush");
        t.flush(&mut stage);
        assert!(stage.is_empty());
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.arg, i as u64);
        }
    }

    #[test]
    fn pause_feeds_histogram_and_utilization() {
        let t = Telemetry::new(128);
        t.record_pause_ns(1_000, 2_000_000);
        assert_eq!(t.pause_histogram().count(), 1);
        assert!(t.pause_histogram().max() >= 1_900_000);
        // The utilization over a huge window is close to 1 but not 1.
        let u = t.mutator_utilization(u64::MAX / 2);
        assert!(u < 1.0 && u > 0.99, "{u}");
    }
}
